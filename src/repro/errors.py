"""Typed error taxonomy for experiment execution.

Every failure the harness can recover from (or at least diagnose) is a
:class:`ReproError` carrying the experiment context — the (app, config,
seed) cell that failed — so sweeps can degrade a failing cell into a
structured error row instead of discarding a half-finished grid, and so
the CLI can print an actionable one-liner instead of a traceback.

Hierarchy::

    ReproError
      ConfigError      (also ValueError)  bad experiment specification
      TraceError       (also ValueError)  trace generation / corrupt records
      SimulationError  (also RuntimeError) the model produced nonsense
        CellTimeout                        a grid cell exceeded its deadline
      CheckpointError  (also RuntimeError) a simulation checkpoint is
                                           corrupt or does not match the run
      TransientError   (also RuntimeError) retryable (worker hiccups,
                                           injected transients)

`ConfigError`/`TraceError` inherit from ``ValueError`` and
`SimulationError`/`TransientError` from ``RuntimeError`` so existing
``except ValueError`` call sites (and tests) keep working.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all typed harness errors.

    ``app``/``config``/``seed`` identify the grid cell that failed, when
    known; the formatted message appends whatever context is present.
    """

    def __init__(self, message: str, *, app: Optional[str] = None,
                 config: Optional[str] = None, seed: Optional[int] = None):
        super().__init__(message)
        self.message = message
        self.app = app
        self.config = config
        self.seed = seed

    @property
    def context(self) -> dict:
        """The non-empty cell coordinates, for journals and error rows."""
        return {k: v for k, v in (("app", self.app), ("config", self.config),
                                  ("seed", self.seed)) if v is not None}

    def with_context(self, *, app: Optional[str] = None,
                     config: Optional[str] = None,
                     seed: Optional[int] = None) -> "ReproError":
        """Fill in missing cell coordinates (never overwrites)."""
        if self.app is None:
            self.app = app
        if self.config is None:
            self.config = config
        if self.seed is None:
            self.seed = seed
        return self

    def __str__(self) -> str:
        ctx = self.context
        if not ctx:
            return self.message
        where = ", ".join(f"{k}={v}" for k, v in ctx.items())
        return f"{self.message} [{where}]"


class ConfigError(ReproError, ValueError):
    """The experiment specification itself is invalid (fail fast)."""


class TraceError(ReproError, ValueError):
    """Trace generation failed or a trace carries corrupt records."""


class SimulationError(ReproError, RuntimeError):
    """The simulation produced an impossible result (e.g. zero cycles)."""


class CellTimeout(SimulationError):
    """A grid cell exceeded its per-cell deadline."""

    def __init__(self, message: str, *, timeout_s: float = 0.0, **kw):
        super().__init__(message, **kw)
        self.timeout_s = timeout_s


class CheckpointError(ReproError, RuntimeError):
    """A simulation checkpoint failed verification on load.

    Raised when a snapshot file is unparseable, fails its content
    digest, or belongs to a different (trace, system) than the run
    trying to resume from it. Never raised for a *missing* checkpoint —
    starting fresh is the correct recovery there.
    """


class TransientError(ReproError, RuntimeError):
    """A retryable failure: retry with backoff before giving up."""
