"""Command-line interface: run SIPT experiments without writing code.

Examples::

    python -m repro list
    python -m repro run --app perlbench --geometry 32K_2w
    python -m repro run --app calculix --variant naive --core inorder
    python -m repro suite --geometry 64K_4w --accesses 10000
    python -m repro mix --name mix0
    python -m repro designspace
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Dict, List, Optional

from .core.indexing import IndexingScheme, SiptVariant
from .sim import (
    BASELINE_L1,
    L1_16K_4W_VIPT,
    SIPT_GEOMETRIES,
    TraceCache,
    harmonic_mean,
    inorder_system,
    ooo_system,
    run_app,
    simulate_multicore,
)
from .timing.cacti import CactiModel
from .workloads import EVALUATED_APPS, MIX_NAMES, MemoryCondition, get_mix

GEOMETRIES = {"baseline": BASELINE_L1, "16K_4w": L1_16K_4W_VIPT,
              **SIPT_GEOMETRIES}

CONDITIONS = {c.value: c for c in MemoryCondition}


def _system(args, l1):
    if args.core == "inorder":
        return inorder_system(l1)
    system = ooo_system(l1)
    if args.core == "ooo-detailed":
        system = replace(system, core="ooo-detailed",
                         name=system.name.replace("ooo/", "ooo-detailed/"))
    return system


def _l1(args):
    l1 = GEOMETRIES[args.geometry]
    if args.scheme:
        l1 = l1.with_scheme(IndexingScheme(args.scheme))
    if args.variant:
        l1 = replace(l1, variant=SiptVariant(args.variant))
    if args.way_prediction:
        l1 = replace(l1, way_prediction=True)
    return l1


def _print_result(result, baseline=None) -> None:
    print(f"app               : {result.app}")
    print(f"system            : {result.system}")
    print(f"IPC               : {result.ipc:.4f}")
    print(f"L1 miss rate      : {result.l1_stats.miss_rate:.4f}")
    print(f"fast fraction     : {result.fast_fraction:.4f}")
    print(f"extra L1 accesses : {result.extra_access_fraction:.4f}")
    print(f"cache energy (mJ) : {result.energy.total * 1e3:.4f}")
    if result.way_prediction_accuracy is not None:
        print(f"way pred accuracy : {result.way_prediction_accuracy:.4f}")
    if result.outcomes.total:
        print("outcomes          :", {
            k: round(v, 3)
            for k, v in result.outcomes.as_fractions().items() if v})
    if baseline is not None:
        print(f"speedup vs VIPT   : {result.speedup_over(baseline):.4f}")
        print(f"energy vs VIPT    : {result.energy_over(baseline):.4f}")


def cmd_list(args) -> int:
    print("geometries :", ", ".join(GEOMETRIES))
    print("apps       :", ", ".join(EVALUATED_APPS))
    print("mixes      :", ", ".join(MIX_NAMES))
    print("conditions :", ", ".join(CONDITIONS))
    print("schemes    :", ", ".join(s.value for s in IndexingScheme))
    print("variants   :", ", ".join(v.value for v in SiptVariant))
    return 0


def cmd_run(args) -> int:
    traces = TraceCache()
    condition = CONDITIONS[args.condition]
    l1 = _l1(args)
    result = run_app(args.app, _system(args, l1), condition=condition,
                     n_accesses=args.accesses, cache=traces)
    baseline = None
    if args.compare_baseline:
        baseline = run_app(args.app, _system(args, BASELINE_L1),
                           condition=condition, n_accesses=args.accesses,
                           cache=traces)
    _print_result(result, baseline)
    return 0


def cmd_suite(args) -> int:
    traces = TraceCache()
    condition = CONDITIONS[args.condition]
    l1 = _l1(args)
    speedups = []
    print(f"{'app':>14s} {'IPC':>7s} {'speedup':>8s} {'fast':>6s} "
          f"{'energy':>7s}")
    for app in EVALUATED_APPS:
        base = run_app(app, _system(args, BASELINE_L1),
                       condition=condition, n_accesses=args.accesses,
                       cache=traces)
        result = run_app(app, _system(args, l1), condition=condition,
                         n_accesses=args.accesses, cache=traces)
        speedup = result.speedup_over(base)
        speedups.append(speedup)
        print(f"{app:>14s} {result.ipc:>7.3f} {speedup:>8.3f} "
              f"{result.fast_fraction:>6.2f} "
              f"{result.energy_over(base):>7.3f}")
    print(f"{'hmean speedup':>14s} {'':>7s} "
          f"{harmonic_mean(speedups):>8.3f}")
    return 0


def cmd_mix(args) -> int:
    traces = TraceCache()
    members = get_mix(args.name)
    mix_traces = [traces.get(app, args.accesses, seed=i)
                  for i, app in enumerate(members)]
    base = simulate_multicore(mix_traces, _system(args, BASELINE_L1))
    sipt = simulate_multicore(mix_traces, _system(args, _l1(args)))
    for core, (b, s) in enumerate(zip(base, sipt)):
        print(f"core {core} {b.app:>14s}: base={b.ipc:.3f} "
              f"sipt={s.ipc:.3f} ({s.ipc / b.ipc:.3f}x)")
    print(f"sum-of-IPC speedup: "
          f"{sum(r.ipc for r in sipt) / sum(r.ipc for r in base):.3f}")
    return 0


def cmd_validate(args) -> int:
    from .validate import format_scorecard, run_scorecard
    checks = run_scorecard(n_accesses=args.accesses)
    print(format_scorecard(checks))
    return 0 if all(c.passed for c in checks) else 1


def cmd_designspace(args) -> int:
    model = CactiModel()
    base = model.latency_ns(32 * 1024, 8)
    print(f"{'config':>12s} {'cycles':>7s} {'vs base':>8s} "
          f"{'nJ':>7s} {'mW':>7s}")
    for capacity in (16, 32, 64, 128):
        for ways in (2, 4, 8, 16):
            c = capacity * 1024
            print(f"{capacity:>9d}K/{ways:<2d} "
                  f"{model.latency_cycles(c, ways):>7d} "
                  f"{model.latency_ns(c, ways) / base:>8.2f} "
                  f"{model.dynamic_nj(c, ways):>7.3f} "
                  f"{model.static_mw(c, ways):>7.1f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SIPT (HPCA 2018) reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list apps, geometries, mixes")

    def common(p, with_app=False):
        if with_app:
            p.add_argument("--app", required=True,
                           help="benchmark name (see `list`)")
        p.add_argument("--geometry", default="32K_2w",
                       choices=sorted(GEOMETRIES))
        p.add_argument("--core", default="ooo",
                       choices=("ooo", "ooo-detailed", "inorder"))
        p.add_argument("--scheme", default=None,
                       choices=[s.value for s in IndexingScheme])
        p.add_argument("--variant", default=None,
                       choices=[v.value for v in SiptVariant])
        p.add_argument("--condition", default="normal",
                       choices=sorted(CONDITIONS))
        p.add_argument("--accesses", type=int, default=30_000)
        p.add_argument("--way-prediction", action="store_true")

    run_p = sub.add_parser("run", help="simulate one app")
    common(run_p, with_app=True)
    run_p.add_argument("--compare-baseline", action="store_true",
                       help="also run the VIPT baseline and report ratios")

    suite_p = sub.add_parser("suite", help="simulate the full 26-app suite")
    common(suite_p)

    mix_p = sub.add_parser("mix", help="simulate a Table III quad-core mix")
    common(mix_p)
    mix_p.add_argument("--name", default="mix0", choices=MIX_NAMES)

    sub.add_parser("designspace", help="print the CACTI design space")

    validate_p = sub.add_parser(
        "validate", help="score the paper's headline claims (smoke check)")
    validate_p.add_argument("--accesses", type=int, default=12_000)
    return parser


COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "suite": cmd_suite,
    "mix": cmd_mix,
    "designspace": cmd_designspace,
    "validate": cmd_validate,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
