"""Command-line interface: run SIPT experiments without writing code.

Examples::

    python -m repro list
    python -m repro run --app perlbench --geometry 32K_2w
    python -m repro run --app calculix --variant naive --core inorder
    python -m repro suite --geometry 64K_4w --accesses 10000
    python -m repro sweep --apps perlbench,mcf --journal sweep.jsonl
    python -m repro sweep --resume sweep.jsonl   # continue after a crash
    python -m repro sweep --journal sweep.jsonl \
        --checkpoint-every 10000 --checkpoint-dir ckpts  # mid-cell resume
    python -m repro run --app mcf --checkpoint-every 10000 \
        --checkpoint-dir ckpts                   # rerun resumes mid-trace
    python -m repro sweep --apps perlbench,mcf --store   # reuse results
    python -m repro jobs submit --apps perlbench,mcf --baseline baseline
    python -m repro jobs run <id> --jobs 4   # execute the missing cells
    python -m repro jobs result <id> --out grid.csv
    python -m repro mix --name mix0
    python -m repro designspace
    python -m repro validate --min-pass 6
    python -m repro stats --app mcf --out snap.json --interval 10000
    python -m repro stats --diff base.json sipt.json
    python -m repro trace --app mcf --sample 64 --tail 5
    python -m repro sweep --jobs 2 --inject kill_worker@1 \
        --journal chaos.jsonl                    # chaos-test the pool

Exit codes: ``0`` success, ``1`` a typed error (printed to stderr) or
failed validation, ``2`` the grid completed but degraded (error,
timeout, or crashed rows) under ``--strict``, ``3`` a simulated worker
crash (fault injection), ``130`` interrupted (Ctrl-C; the journal stays
resumable).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from functools import partial
from pathlib import Path
from typing import Dict, List, Optional

from . import faultfs
from .core.indexing import IndexingScheme, SiptVariant
from .errors import ConfigError, ReproError
from .sim import (
    BASELINE_L1,
    L1_16K_4W_VIPT,
    SIPT_GEOMETRIES,
    FaultInjector,
    ResilientRunner,
    RetryPolicy,
    TraceCache,
    WorkerCrash,
    checkpoint_path_for,
    harmonic_mean,
    inorder_system,
    ooo_system,
    run_app,
    run_sweep,
    simulate_multicore,
    to_csv,
)
from .sim.sweep import SweepSpec
from .timing.cacti import CactiModel
from .workloads import EVALUATED_APPS, MIX_NAMES, MemoryCondition, get_mix

GEOMETRIES = {"baseline": BASELINE_L1, "16K_4w": L1_16K_4W_VIPT,
              **SIPT_GEOMETRIES}

CONDITIONS = {c.value: c for c in MemoryCondition}

#: Exit code for a grid that completed but carries error rows (--strict).
EXIT_DEGRADED = 2
#: Exit code for a simulated worker crash (fault injection).
EXIT_CRASHED = 3


def _system(args, l1):
    if args.core == "inorder":
        return inorder_system(l1)
    system = ooo_system(l1)
    if args.core == "ooo-detailed":
        system = replace(system, core="ooo-detailed",
                         name=system.name.replace("ooo/", "ooo-detailed/"))
    return system


def _l1(args, geometry: Optional[str] = None):
    l1 = GEOMETRIES[geometry or args.geometry]
    if args.scheme:
        l1 = l1.with_scheme(IndexingScheme(args.scheme))
    if args.variant:
        l1 = replace(l1, variant=SiptVariant(args.variant))
    if args.way_prediction:
        l1 = replace(l1, way_prediction=True)
    return l1


def _runner(args) -> ResilientRunner:
    """Build the resilience runner from the common CLI flags.

    One ``--inject`` flag serves two fault families: I/O kinds
    (``io_error``/``estale``/``enospc``/``slow_io``/``torn_write``)
    arm a process-local :class:`~repro.faultfs.FaultPlan` at the
    :mod:`repro.ioutil` choke point, the rest build the simulation
    :class:`FaultInjector`. The partition matters — ``run_sweep``
    disables the result store whenever *simulation* faults are armed
    (injected divergence must not be published), but I/O-fault
    campaigns exist precisely to exercise the store paths.
    """
    journal = getattr(args, "journal", None)
    resume = getattr(args, "resume", None)
    faults = None
    if getattr(args, "inject", None):
        io_specs, sim_specs = faultfs.split_specs(args.inject)
        if io_specs:
            faultfs.install_plan(faultfs.FaultPlan(io_specs))
        if sim_specs:
            faults = FaultInjector(sim_specs)
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    if checkpoint_dir:
        Path(checkpoint_dir).mkdir(parents=True, exist_ok=True)
    return ResilientRunner(
        journal=journal or resume,
        resume_from=resume,
        timeout_s=getattr(args, "timeout", None),
        retry=RetryPolicy(max_retries=getattr(args, "retries", 2)),
        faults=faults,
        jobs=getattr(args, "jobs", 1),
        checkpoint_dir=checkpoint_dir,
        max_cell_crashes=getattr(args, "max_cell_crashes", 2),
        max_worker_restarts=getattr(args, "max_worker_restarts", None))


def _finish(args, runner: ResilientRunner) -> int:
    """Common epilogue: report runner stats, apply --strict."""
    runner.close()
    stats = runner.stats
    if stats.total:
        print(f"[resilience] {stats.summary()}", file=sys.stderr)
    if stats.degraded and getattr(args, "strict", False):
        return EXIT_DEGRADED
    return 0


def _print_result(result, baseline=None) -> None:
    print(f"app               : {result.app}")
    print(f"system            : {result.system}")
    print(f"IPC               : {result.ipc:.4f}")
    print(f"L1 miss rate      : {result.l1_stats.miss_rate:.4f}")
    print(f"fast fraction     : {result.fast_fraction:.4f}")
    print(f"extra L1 accesses : {result.extra_access_fraction:.4f}")
    print(f"cache energy (mJ) : {result.energy.total * 1e3:.4f}")
    if result.way_prediction_accuracy is not None:
        print(f"way pred accuracy : {result.way_prediction_accuracy:.4f}")
    if result.outcomes.total:
        print("outcomes          :", {
            k: round(v, 3)
            for k, v in result.outcomes.as_fractions().items() if v})
    if baseline is not None:
        print(f"speedup vs VIPT   : {result.speedup_over(baseline):.4f}")
        print(f"energy vs VIPT    : {result.energy_over(baseline):.4f}")


def cmd_list(args) -> int:
    """`repro list`: print every valid name for the choice flags."""
    print("geometries :", ", ".join(GEOMETRIES))
    print("apps       :", ", ".join(EVALUATED_APPS))
    print("mixes      :", ", ".join(MIX_NAMES))
    print("conditions :", ", ".join(CONDITIONS))
    print("schemes    :", ", ".join(s.value for s in IndexingScheme))
    print("variants   :", ", ".join(v.value for v in SiptVariant))
    return 0


def cmd_run(args) -> int:
    """`repro run`: simulate one app, print the result block."""
    traces = TraceCache()
    runner = _runner(args)
    condition = CONDITIONS[args.condition]
    l1 = _l1(args)
    holder: Dict[str, object] = {}
    key = {"cmd": "run", "app": args.app, "geometry": args.geometry,
           "core": args.core, "condition": args.condition}
    if args.checkpoint_every and not (args.checkpoint_dir
                                      or args.resume_checkpoint):
        raise ConfigError("--checkpoint-every needs --checkpoint-dir "
                          "(or an explicit --resume-checkpoint file)")
    ckpt = None
    if args.resume_checkpoint:
        ckpt = Path(args.resume_checkpoint)
    elif args.checkpoint_dir:
        ckpt = checkpoint_path_for(args.checkpoint_dir, key)

    def cell():
        holder["result"] = run_app(
            args.app, _system(args, l1), condition=condition,
            n_accesses=args.accesses, cache=traces,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=ckpt if args.checkpoint_every else None,
            resume_checkpoint=ckpt, engine=args.engine)
        if args.compare_baseline:
            holder["baseline"] = run_app(
                args.app, _system(args, BASELINE_L1), condition=condition,
                n_accesses=args.accesses, cache=traces,
                engine=args.engine)
        result = holder["result"]
        return {"app": args.app, "ipc": result.ipc}

    # degrade=False: a single-cell command wants the typed error (exit 1
    # via main's handler), not an error row — but retries/timeouts and
    # injected faults still apply.
    runner.run_cell(key, cell, degrade=False)
    runner.close()
    _print_result(holder["result"], holder.get("baseline"))
    return 0


def _suite_cell(app: str, base_system, sipt_system, condition,
                n_accesses: int, checkpoint_every: Optional[int] = None,
                checkpoint_path: Optional[Path] = None,
                engine: str = "python") -> dict:
    """One suite row as a picklable task (module-level for ``--jobs``).

    Traces come from the process-local shared cache (``cache=None``),
    so the same function serves both the serial runner path and pool
    workers; the simulations are seeded, so the rows are identical.
    The SIPT run checkpoints (and auto-resumes) when asked; the VIPT
    baseline is shared warm-up work and stays uncheckpointed, like
    sweep baselines.
    """
    base = run_app(app, base_system, condition=condition,
                   n_accesses=n_accesses, cache=None, engine=engine)
    result = run_app(app, sipt_system, condition=condition,
                     n_accesses=n_accesses, cache=None,
                     checkpoint_every=checkpoint_every,
                     checkpoint_path=checkpoint_path,
                     resume_checkpoint=checkpoint_path,
                     engine=engine)
    return {"app": app, "ipc": result.ipc,
            "speedup": result.speedup_over(base),
            "fast": result.fast_fraction,
            "energy_ratio": result.energy_over(base)}


def cmd_suite(args) -> int:
    """`repro suite`: per-app speedup/energy table over the suite."""
    runner = _runner(args)
    condition = CONDITIONS[args.condition]
    base_system = _system(args, BASELINE_L1)
    sipt_system = _system(args, _l1(args))
    if args.checkpoint_every and runner.checkpoint_dir is None:
        raise ConfigError("--checkpoint-every needs --checkpoint-dir")
    cells = []
    for app in EVALUATED_APPS:
        key = {"cmd": "suite", "app": app, "geometry": args.geometry,
               "core": args.core, "condition": args.condition,
               "accesses": args.accesses}
        ckpt = (checkpoint_path_for(runner.checkpoint_dir, key)
                if args.checkpoint_every else None)
        cells.append((key, partial(_suite_cell, app, base_system,
                                   sipt_system, condition, args.accesses,
                                   args.checkpoint_every, ckpt,
                                   args.engine)))
    rows = runner.run_cells(cells)
    speedups = []
    print(f"{'app':>14s} {'IPC':>7s} {'speedup':>8s} {'fast':>6s} "
          f"{'energy':>7s}")
    for app, row in zip(EVALUATED_APPS, rows):
        if row.get("status") != "ok":
            print(f"{app:>14s} {'ERROR':>7s}  {row.get('error', '')}")
            continue
        speedups.append(row["speedup"])
        print(f"{app:>14s} {row['ipc']:>7.3f} {row['speedup']:>8.3f} "
              f"{row['fast']:>6.2f} {row['energy_ratio']:>7.3f}")
    if speedups:
        print(f"{'hmean speedup':>14s} {'':>7s} "
              f"{harmonic_mean(speedups):>8.3f}")
    return _finish(args, runner)


def _sweep_spec(args) -> SweepSpec:
    """Build (and validate) the sweep grid from the shared grid flags."""
    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    names = [g.strip() for g in args.geometries.split(",") if g.strip()]
    unknown = [g for g in names if g not in GEOMETRIES]
    if unknown:
        raise ConfigError(f"unknown geometries {unknown}; "
                          f"choose from {sorted(GEOMETRIES)}")
    return SweepSpec(
        apps=apps,
        configs={name: GEOMETRIES[name] for name in names},
        cores=[c.strip() for c in args.cores.split(",") if c.strip()],
        conditions=[CONDITIONS[c.strip()]
                    for c in args.conditions.split(",") if c.strip()],
        seeds=[int(s) for s in args.seeds.split(",") if s.strip()],
        baseline=args.baseline)


def _store_from(args):
    """The :class:`~repro.store.ResultStore` the flags ask for, if any.

    ``--store`` with no value means the default root
    (``REPRO_STORE_DIR`` or ``~/.cache/repro-store``); with a value,
    that directory. Absent (``None``) means no store participation.
    """
    value = getattr(args, "store", None)
    if value is None:
        return None
    from .store import ResultStore
    return ResultStore(value or None)


def _store_report(store, runner) -> None:
    """Print the store dedupe summary + run GC (the ``[store]`` line).

    The line is stable and grep-able — CI's store-smoke job asserts
    ``, 0 simulated`` on a fully warm rerun, and io-fault-smoke greps
    ``degraded`` from the failure line printed here. Write failures
    (the store surfaces the caller explicitly asked for and did not
    get) fold into ``RunnerStats.artifact_failures`` so ``--strict``
    sees them; read failures stay informational — a failed read is a
    miss that already re-simulated exactly.
    """
    hits = runner.stats.store_hits
    simulated = runner.stats.total - hits
    print(f"[store] {hits} of {runner.stats.total} cells from store, "
          f"{simulated} simulated (root {store.root})", file=sys.stderr)
    if store.degraded:
        print(f"[store] degraded: {store.read_failures} read failures "
              f"(served as misses), {store.write_failures} write "
              "failures (entries unpublished); results are unaffected",
              file=sys.stderr)
        runner.stats.artifact_failures += store.write_failures
    removed, freed = store.gc()
    if removed:
        print(f"[store] gc evicted {removed} entries "
              f"({freed / 1024:.0f} KiB) to honor the size cap",
              file=sys.stderr)
    if store.tmp_swept:
        print(f"[store] gc swept {store.tmp_swept} orphaned tmp "
              "file(s)", file=sys.stderr)


def cmd_sweep(args) -> int:
    """`repro sweep`: run an (apps x geometries x ...) grid to CSV."""
    spec = _sweep_spec(args)
    runner = _runner(args)
    store = _store_from(args)
    rows = run_sweep(spec, n_accesses=args.accesses, traces=TraceCache(),
                     runner=runner,
                     checkpoint_every=args.checkpoint_every,
                     substrate=False if args.no_substrate else None,
                     warm_reuse=not args.no_warm_reuse,
                     engine=args.engine,
                     store=store)
    path = to_csv(rows, args.out)
    print(f"wrote {len(rows)} rows to {path}")
    if store is not None:
        _store_report(store, runner)
    return _finish(args, runner)


def cmd_jobs(args) -> int:
    """`repro jobs`: submit/track/run/collect store-backed sweep jobs.

    The daemon-free async front end over the content-addressed store
    (``docs/sweep-service.md``): ``submit`` journals a grid and dedupes
    it against the store, ``status`` recomputes progress live, ``run``
    executes the missing cells through :func:`run_sweep` with the
    store attached, and ``result`` composes the CSV purely from store
    entries — byte-identical to a cold ``sweep`` of the same grid.
    """
    from .sim.sweep import _system_for, grid_cells, rows_from_store
    from .store import (LeaseRenewer, job_status, list_jobs, load_job,
                        release_claims, submit_job)
    store = _store_from(args)
    if args.action == "submit":
        spec = _sweep_spec(args)
        grid = {"apps": spec.apps, "geometries": list(spec.configs),
                "baseline": spec.baseline, "cores": spec.cores,
                "conditions": [c.value for c in spec.conditions],
                "seeds": spec.seeds, "accesses": args.accesses}
        traces = TraceCache()
        cells = []
        for key, app, name, cfg, core, condition, seed in grid_cells(spec):
            trace = traces.get(app, args.accesses, condition, seed)
            cells.append((key, store.digest(trace,
                                            _system_for(core, cfg))))
        summary = submit_job(store, grid, cells)
        print(f"job {summary['id']}: {summary['cells']} cells, "
              f"{summary['done']} already in store, "
              f"{summary['shared']} in flight elsewhere, "
              f"{summary['claimed']} claimed")
        return 0
    if args.action == "status":
        records = ([load_job(store, args.id)] if args.id
                   else list_jobs(store))
        if not records:
            print("no jobs submitted to this store")
            return 0
        for record in records:
            st = job_status(store, record)
            line = (f"job {record['id']}: {st['done']}/{st['total']} "
                    f"done, {st['inflight']} in flight elsewhere, "
                    f"{st['pending']} pending")
            if st["stuck"]:
                line += (f", {st['stuck']} stuck claims (finished but "
                         "unreleased — `repro store doctor --repair`)")
            print(line)
        return 0
    record = load_job(store, args.id)
    spec, accesses = _spec_from_grid(record["grid"])
    if args.action == "run":
        runner = _runner(args)
        # The renewer stamps this process as the claims' owner up
        # front (stealing any expired leases) and re-stamps them every
        # TTL/3 while cells execute, so a SIGKILL here wedges
        # overlapping jobs for at most one lease TTL.
        with LeaseRenewer(store, record):
            run_sweep(spec, n_accesses=accesses, traces=TraceCache(),
                      runner=runner, engine=args.engine, store=store)
        released, failed = release_claims(store, record)
        if failed:
            print(f"[jobs] {failed} finished claim marker(s) could not "
                  "be released (root read-only?); they will read as "
                  "stuck in `jobs status` until `store doctor --repair`",
                  file=sys.stderr)
        _store_report(store, runner)
        return _finish(args, runner)
    # action == "result"
    rows, missing = rows_from_store(spec, accesses, store)
    if missing and not args.partial:
        print(f"job {record['id']}: {len(missing)} of {len(rows)} cells "
              "not in the store yet — `repro jobs run` it, wait for "
              "the job holding them, or stream what exists with "
              "--partial", file=sys.stderr)
        return 1
    if missing:
        done_rows = [row for row in rows if row.get("status")]
        path = to_csv(done_rows, args.out)
        print(f"wrote {len(done_rows)} of {len(rows)} rows to {path} "
              f"(partial: {len(missing)} cells still pending)")
        return 0
    release_claims(store, record)
    path = to_csv(rows, args.out)
    print(f"wrote {len(rows)} rows to {path}")
    return 0


def cmd_store(args) -> int:
    """`repro store`: maintenance over the content-addressed store.

    ``doctor`` scans the root for damage a long shared life
    accumulates — ``*.tmp`` litter, corrupt/truncated entries, expired
    leases, dangling/stuck markers, unloadable job records — and
    prints one line per finding. With ``--repair`` it also applies
    each finding's fix (all removals; safe because the store is
    idempotent and content-addressed). Exits 0 when the root ends the
    command clean, 1 when findings remain (reported but unrepaired, or
    a repair failed) so cron/CI can alert on a dirty root.
    """
    from .store import diagnose, repair, summarize
    store = _store_from(args)
    findings = diagnose(store)
    if not findings:
        print(f"store {store.root}: clean")
        return 0
    for finding in findings:
        print(f"[{finding.category}] {finding.path}: {finding.detail}")
    tally = ", ".join(f"{count} {category}" for category, count
                      in sorted(summarize(findings).items()))
    if not args.repair:
        print(f"store {store.root}: {len(findings)} finding(s) "
              f"({tally}); rerun with --repair to fix")
        return 1
    fixed, failed = repair(store, findings)
    print(f"store {store.root}: repaired {fixed} of {len(findings)} "
          f"finding(s) ({tally})")
    if failed:
        print(f"store {store.root}: {failed} repair(s) failed — is "
              "the root writable?", file=sys.stderr)
        return 1
    return 0


def _spec_from_grid(grid: dict):
    """Rebuild ``(SweepSpec, accesses)`` from a job record's grid.

    The inverse of ``jobs submit``'s grid payload; names resolve
    through the same tables as the live flags, so a job submitted on
    one machine runs identically on another sharing the store root.
    """
    try:
        spec = SweepSpec(
            apps=list(grid["apps"]),
            configs={name: GEOMETRIES[name]
                     for name in grid["geometries"]},
            cores=list(grid["cores"]),
            conditions=[CONDITIONS[c] for c in grid["conditions"]],
            seeds=[int(s) for s in grid["seeds"]],
            baseline=grid["baseline"])
        return spec, grid["accesses"]
    except KeyError as exc:
        raise ConfigError(
            f"job grid is missing {exc} — submitted by an incompatible "
            "version? resubmit with this CLI") from None


def cmd_mix(args) -> int:
    """`repro mix`: simulate one Table III quad-core mix."""
    traces = TraceCache()
    members = get_mix(args.name)
    mix_traces = [traces.get(app, args.accesses, seed=i)
                  for i, app in enumerate(members)]
    base = simulate_multicore(mix_traces, _system(args, BASELINE_L1),
                              engine=args.engine)
    sipt = simulate_multicore(mix_traces, _system(args, _l1(args)),
                              engine=args.engine)
    for core, (b, s) in enumerate(zip(base, sipt)):
        print(f"core {core} {b.app:>14s}: base={b.ipc:.3f} "
              f"sipt={s.ipc:.3f} ({s.ipc / b.ipc:.3f}x)")
    print(f"sum-of-IPC speedup: "
          f"{sum(r.ipc for r in sipt) / sum(r.ipc for r in base):.3f}")
    if args.out:
        _write_mix_csv(args.out, args.name, base, sipt)
        print(f"wrote {args.out}")
    return 0


def _write_mix_csv(path, mix_name, base, sipt) -> None:
    """Per-core mix results at full float precision.

    ``repr`` floats make the file a byte-level engine-equivalence
    artifact: a python-engine CSV and a kernel-engine CSV of the same
    mix must satisfy ``cmp`` — any replay divergence, however small,
    shows up as a byte difference.
    """
    import csv
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["mix", "core", "app", "l1", "instructions",
                         "cycles", "ipc", "l1_hits", "l1_misses"])
        for label, results in (("base", base), ("sipt", sipt)):
            for core, r in enumerate(results):
                writer.writerow([
                    mix_name, core, r.app, label, r.instructions,
                    repr(r.cycles), repr(r.ipc),
                    r.l1_stats.hits, r.l1_stats.misses])


def cmd_bench(args) -> int:
    """`repro bench`: time the hot path or the sweep, emit BENCH_*.json."""
    from .sim.bench import (DEFAULT_APPS, SWEEP_BENCH_APPS,
                            check_regression, run_bench, run_sweep_bench,
                            write_report)
    default_apps = (SWEEP_BENCH_APPS if args.mode == "sweep"
                    else DEFAULT_APPS)
    apps = [a.strip() for a in (args.apps or ",".join(default_apps)
                                ).split(",") if a.strip()]
    accesses = args.accesses or (8_000 if args.mode == "sweep"
                                 else 20_000)
    unknown = [a for a in apps if a not in EVALUATED_APPS]
    if unknown:
        raise ConfigError(f"unknown apps {unknown}; see `repro list`")
    if args.mode == "sweep":
        if args.engine != "python":
            raise ConfigError(
                "--engine applies to hotpath mode; the sweep bench "
                "times the pipeline around replay, not replay itself")
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
        report = run_sweep_bench(apps=apps, n_accesses=accesses,
                                 seeds=seeds, jobs=args.jobs,
                                 repeats=args.repeats, label=args.label)
        print(f"sweep of {report['cells']} cells, jobs={report['jobs']}:")
        for mode, point in report["modes"].items():
            print(f"  {mode:>14s}     : {point['cells_per_s']:7.2f} "
                  f"cells/s ({point['best_s']:.3f}s best of "
                  f"{report['repeats']})")
        print(f"substrate speedup    : {report['speedup_substrate']:.2f}x "
              f"vs plain --jobs {report['jobs']}")
    else:
        report = run_bench(apps=apps, n_accesses=accesses,
                           l1=_l1(args), repeats=args.repeats,
                           profile=args.profile, label=args.label,
                           interval=args.interval,
                           checkpoint_every=args.checkpoint_every,
                           engine=args.engine)
        agg = report["aggregate_accesses_per_s"]
        print(f"aggregate throughput : {agg:,.0f} accesses/s")
        for app, point in report["apps"].items():
            print(f"  {app:>14s}     : {point['accesses_per_s']:,.0f} "
                  f"accesses/s ({point['best_s']:.3f}s best of "
                  f"{report['repeats']})")
        if args.profile:
            print("hottest functions (cumulative):")
            for row in report["profile_top"][:12]:
                print(f"  {row['cumtime_s']:8.3f}s {row['calls']:>9d}x "
                      f"{row['function']}")
    path = write_report(report, args.out)
    print(f"wrote {path}")
    if args.check:
        ok, message = check_regression(report, args.check,
                                       tolerance=args.tolerance)
        print(("OK: " if ok else "REGRESSION: ") + message)
        if not ok:
            return 1
    return 0


def _print_metrics(metrics: Dict[str, float], prefix: Optional[str],
                   skip_zero: bool = False) -> None:
    """Print a metrics dict one `name : value` per line, filtered."""
    for name in sorted(metrics):
        if prefix and not name.startswith(prefix):
            continue
        value = metrics[name]
        if skip_zero and not value:
            continue
        if isinstance(value, float) and not value.is_integer():
            print(f"{name:<40s} : {value:.6g}")
        else:
            print(f"{name:<40s} : {int(value)}")


def cmd_stats(args) -> int:
    """`repro stats`: dump/save/diff snapshots, export intervals."""
    from .obs import (diff_snapshots, intervals_to_csv, load_snapshot,
                      save_snapshot, write_jsonl)
    if args.diff:
        before = load_snapshot(args.diff[0])
        after = load_snapshot(args.diff[1])
        _print_metrics(diff_snapshots(before, after), args.filter,
                       skip_zero=not args.zeros)
        return 0
    if not args.app:
        raise ConfigError("stats needs --app APP to run a simulation, "
                          "or --diff A.json B.json to compare snapshots")
    result = run_app(args.app, _system(args, _l1(args)),
                     condition=CONDITIONS[args.condition],
                     n_accesses=args.accesses, cache=TraceCache(),
                     interval=args.interval, engine=args.engine)
    _print_metrics(result.metrics, args.filter)
    if args.out:
        meta = {"app": args.app, "system": result.system,
                "accesses": args.accesses, "condition": args.condition}
        print(f"wrote {save_snapshot(result.metrics, args.out, meta)}")
    if args.interval:
        jsonl = args.intervals_out or f"intervals_{args.app}.jsonl"
        print(f"wrote {len(result.intervals)} interval records to "
              f"{write_jsonl(result.intervals, jsonl)}")
        if args.export_csv:
            print(f"wrote {intervals_to_csv(result.intervals, args.export_csv)}")
    elif args.export_csv or args.intervals_out:
        raise ConfigError("--export-csv/--intervals-out need --interval N")
    return 0


def cmd_trace(args) -> int:
    """`repro trace`: record and print sampled SIPT decisions."""
    from .obs import DecisionTrace
    trace = DecisionTrace(capacity=args.capacity, sample=args.sample)
    result = run_app(args.app, _system(args, _l1(args)),
                     condition=CONDITIONS[args.condition],
                     n_accesses=args.accesses, cache=TraceCache(),
                     decision_trace=trace)
    summary = trace.summary()
    print(f"app       : {args.app} ({result.system})")
    print(f"recorded  : {summary['recorded']} decisions "
          f"(every {summary['sample']}th access), "
          f"{summary['buffered']} buffered (capacity {summary['capacity']})")
    print(f"outcomes  : {summary['outcomes']}")
    if args.tail:
        print(f"last {min(args.tail, len(trace))} decisions:")
        for record in trace.tail(args.tail):
            outcome = record["outcome"] or "-"
            print(f"  #{record['index']:<8d} pc={record['pc']:#x} "
                  f"va={record['va']:#x} {outcome:<20s} "
                  f"hit={int(record['hit'])} fast={int(record['fast'])} "
                  f"extra={int(record['extra_l1_access'])} "
                  f"lat={record['latency']}")
    if args.out:
        meta = {"app": args.app, "system": result.system,
                "accesses": args.accesses, "condition": args.condition}
        print(f"wrote {trace.write_jsonl(args.out, meta)}")
    return 0


def cmd_validate(args) -> int:
    """`repro validate`: score the paper-claims smoke scorecard."""
    from .validate import format_scorecard, run_scorecard
    runner = _runner(args)
    checks = run_scorecard(n_accesses=args.accesses, runner=runner)
    print(format_scorecard(checks))
    strict_rc = _finish(args, runner)
    if strict_rc:
        return strict_rc
    n_pass = sum(c.passed for c in checks)
    required = len(checks) if args.min_pass is None else args.min_pass
    return 0 if n_pass >= required else 1


def _designspace_cell(capacity_b: int, ways: int) -> dict:
    """One CACTI design point as a picklable task (for ``--jobs``).

    The model is analytic and deterministic, so rebuilding it per cell
    is cheap and keeps the task self-contained for pool workers.
    """
    model = CactiModel()
    base = model.latency_ns(32 * 1024, 8)
    return {"cycles": model.latency_cycles(capacity_b, ways),
            "ratio": model.latency_ns(capacity_b, ways) / base,
            "nj": model.dynamic_nj(capacity_b, ways),
            "mw": model.static_mw(capacity_b, ways)}


def cmd_designspace(args) -> int:
    """`repro designspace`: print the CACTI latency/energy grid."""
    runner = _runner(args)
    points = [(capacity, ways) for capacity in (16, 32, 64, 128)
              for ways in (2, 4, 8, 16)]
    cells = [({"cmd": "designspace", "capacity_kib": capacity,
               "ways": ways},
              partial(_designspace_cell, capacity * 1024, ways))
             for capacity, ways in points]
    rows = runner.run_cells(cells)
    print(f"{'config':>12s} {'cycles':>7s} {'vs base':>8s} "
          f"{'nJ':>7s} {'mW':>7s}")
    for (capacity, ways), row in zip(points, rows):
        if row.get("status") != "ok":
            print(f"{capacity:>9d}K/{ways:<2d} {'ERROR':>7s}  "
                  f"{row.get('error', '')}")
            continue
        print(f"{capacity:>9d}K/{ways:<2d} "
              f"{row['cycles']:>7d} "
              f"{row['ratio']:>8.2f} "
              f"{row['nj']:>7.3f} "
              f"{row['mw']:>7.1f}")
    return _finish(args, runner)


def build_parser() -> argparse.ArgumentParser:
    """Build the `repro` argument parser (one subparser per command)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="SIPT (HPCA 2018) reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list apps, geometries, mixes")

    def common(p, with_app=False):
        if with_app:
            p.add_argument("--app", required=True,
                           help="benchmark name (see `list`)")
        p.add_argument("--geometry", default="32K_2w",
                       choices=sorted(GEOMETRIES))
        p.add_argument("--core", default="ooo",
                       choices=("ooo", "ooo-detailed", "inorder"))
        p.add_argument("--scheme", default=None,
                       choices=[s.value for s in IndexingScheme])
        p.add_argument("--variant", default=None,
                       choices=[v.value for v in SiptVariant])
        p.add_argument("--condition", default="normal",
                       choices=sorted(CONDITIONS))
        p.add_argument("--accesses", type=int, default=30_000)
        p.add_argument("--way-prediction", action="store_true")

    def engine(p):
        p.add_argument(
            "--engine", default="python", choices=("python", "kernel"),
            help="replay implementation: the pure-python oracle or the "
                 "byte-identical array-compiled kernel (faster; falls "
                 "back to python per run when a config is outside the "
                 "kernel's envelope)")

    def resilience(p, with_journal=True):
        group = p.add_argument_group("resilience")
        if with_journal:
            group.add_argument(
                "--journal", metavar="JSONL",
                help="append one record per finished grid cell")
            group.add_argument(
                "--resume", metavar="JSONL",
                help="skip cells a previous run journaled (implies "
                     "--journal JSONL unless given separately)")
            group.add_argument(
                "--strict", action="store_true",
                help=f"exit {EXIT_DEGRADED} if any cell degraded to an "
                     "error row")
            group.add_argument(
                "--jobs", type=int, default=1, metavar="N",
                help="run grid cells in N supervised worker processes "
                     "(rows, journal, and --resume stay identical to "
                     "serial; worker death costs one cell, not the "
                     "sweep; attempt-level --inject kinds require "
                     "jobs=1)")
            group.add_argument(
                "--max-cell-crashes", type=int, default=2, metavar="K",
                help="quarantine a cell with status=crashed after its "
                     "execution kills K workers (default 2)")
            group.add_argument(
                "--max-worker-restarts", type=int, default=None,
                metavar="K",
                help="pool rebuilds allowed after worker deaths before "
                     "the remaining cells degrade to serial in-process "
                     "execution (default: jobs x 3)")
        group.add_argument("--timeout", type=float, default=None,
                           metavar="SECONDS", help="per-cell deadline")
        group.add_argument("--retries", type=int, default=2,
                           help="retry budget for transient errors")
        group.add_argument(
            "--inject", action="append", default=[], metavar="FAULT",
            help="inject a deterministic fault: crash@N, crash@N@ACCESS "
                 "(mid-simulation), transient@N[xK], stall@N:SECONDS, "
                 "corrupt_trace@N[xK], poison_predictor@N[xK], "
                 "kill_worker@N[xK] (repeatable; data-level kinds work "
                 "with --jobs; kill_worker requires --jobs >= 2); I/O "
                 "kinds — io_error@N[xK], estale@N[xK], enospc@N[xK], "
                 "slow_io@N:SECONDS, torn_write@N — hit the N-th "
                 "guarded filesystem operation instead of a grid cell "
                 "(see docs/robustness.md)")

    def checkpointing(p, single_cell=False):
        group = p.add_argument_group("checkpointing")
        group.add_argument(
            "--checkpoint-every", type=int, default=None, metavar="N",
            help="snapshot simulation state every N accesses "
                 "(crash-safe; a rerun resumes mid-trace)")
        group.add_argument(
            "--checkpoint-dir", default=None, metavar="DIR",
            help="directory for per-cell snapshot files; failed cells "
                 "with a snapshot degrade to status=resumable and "
                 "fast-forward on the next run")
        if single_cell:
            group.add_argument(
                "--resume-checkpoint", default=None, metavar="FILE",
                help="resume from this snapshot file (missing file = "
                     "fresh start; overrides the --checkpoint-dir name)")

    run_p = sub.add_parser("run", help="simulate one app")
    common(run_p, with_app=True)
    engine(run_p)
    resilience(run_p, with_journal=False)
    checkpointing(run_p, single_cell=True)
    run_p.add_argument("--compare-baseline", action="store_true",
                       help="also run the VIPT baseline and report ratios")

    suite_p = sub.add_parser("suite", help="simulate the full 26-app suite")
    common(suite_p)
    engine(suite_p)
    resilience(suite_p)
    checkpointing(suite_p)

    def grid_flags(p):
        """The sweep-grid axes, shared by `sweep` and `jobs submit`."""
        p.add_argument("--apps", default="perlbench,mcf,libquantum",
                       help="comma-separated benchmark names")
        p.add_argument("--geometries", default="baseline,32K_2w",
                       help="comma-separated geometry names")
        p.add_argument("--baseline", default=None,
                       help="geometry name to normalize ratios against")
        p.add_argument("--cores", default="ooo")
        p.add_argument("--conditions", default="normal")
        p.add_argument("--seeds", default="0")
        p.add_argument("--accesses", type=int, default=30_000)

    def store_flag(p, default=None):
        """--store: content-addressed result-store participation.

        The `jobs` subcommands pass ``default=""`` (the store is the
        service's substrate, so it is always on, at the default root
        unless pointed elsewhere); plain `sweep` defaults to off.
        """
        p.add_argument(
            "--store", nargs="?", const="", default=default,
            metavar="DIR",
            help="dedupe against (and publish to) the persistent "
                 "content-addressed result store; no value = "
                 "$REPRO_STORE_DIR or ~/.cache/repro-store "
                 "(see docs/sweep-service.md)")

    sweep_p = sub.add_parser(
        "sweep", help="run an (apps x geometries x ...) grid to CSV")
    grid_flags(sweep_p)
    sweep_p.add_argument("--out", default="sweep.csv",
                         help="CSV output path")
    sweep_p.add_argument("--no-substrate", action="store_true",
                         help="with --jobs N: regenerate traces in each "
                              "worker instead of attaching the parent's "
                              "shared-memory segments")
    sweep_p.add_argument("--no-warm-reuse", action="store_true",
                         help="re-simulate every baseline run instead of "
                              "restoring the first run's completed state")
    store_flag(sweep_p)
    engine(sweep_p)
    resilience(sweep_p)
    checkpointing(sweep_p)

    jobs_p = sub.add_parser(
        "jobs", help="submit/track/run/collect store-backed sweep jobs")
    jobs_sub = jobs_p.add_subparsers(dest="action", required=True)
    submit_p = jobs_sub.add_parser(
        "submit", help="journal a grid as a job, deduped vs the store")
    grid_flags(submit_p)
    store_flag(submit_p, default="")
    status_p = jobs_sub.add_parser(
        "status", help="live done/in-flight/pending tallies per job")
    status_p.add_argument("id", nargs="?", default=None,
                          help="job id (default: every job on the store)")
    store_flag(status_p, default="")
    run_jp = jobs_sub.add_parser(
        "run", help="execute one job's missing cells into the store")
    run_jp.add_argument("id", help="job id from `jobs submit`")
    store_flag(run_jp, default="")
    engine(run_jp)
    resilience(run_jp)
    result_p = jobs_sub.add_parser(
        "result", help="compose a job's CSV purely from store entries")
    result_p.add_argument("id", help="job id from `jobs submit`")
    result_p.add_argument("--out", default="job.csv",
                          help="CSV output path")
    result_p.add_argument(
        "--partial", action="store_true",
        help="stream the rows whose cells are finished (exit 0) "
             "instead of refusing with exit 1 while any cell is "
             "missing; rerun without --partial for the full CSV")
    store_flag(result_p, default="")

    store_p = sub.add_parser(
        "store", help="maintain the content-addressed result store")
    store_sub = store_p.add_subparsers(dest="action", required=True)
    doctor_p = store_sub.add_parser(
        "doctor", help="scan the store root for tmp litter, corrupt "
                       "entries, expired leases, and dangling job "
                       "state; fix with --repair")
    doctor_p.add_argument(
        "--repair", action="store_true",
        help="apply each finding's fix (removals only; safe because "
             "the store is content-addressed and idempotent)")
    store_flag(doctor_p, default="")

    mix_p = sub.add_parser("mix", help="simulate a Table III quad-core mix")
    common(mix_p)
    engine(mix_p)
    mix_p.add_argument("--name", default="mix0", choices=MIX_NAMES)
    mix_p.add_argument(
        "--out", metavar="CSV",
        help="write per-core results as CSV with full-precision "
             "(repr) floats — byte-comparable across --engine values "
             "for the oracle-equivalence gate")

    designspace_p = sub.add_parser(
        "designspace", help="print the CACTI design space")
    resilience(designspace_p)

    bench_p = sub.add_parser(
        "bench", help="measure simulate() throughput, emit BENCH_*.json")
    bench_p.add_argument("--mode", default="hotpath",
                         choices=("hotpath", "sweep"),
                         help="hotpath: time simulate() replay; sweep: "
                              "time the end-to-end sweep pipeline at "
                              "--jobs 1 vs --jobs N with/without the "
                              "shared trace substrate")
    bench_p.add_argument("--jobs", type=int, default=4,
                         help="worker count for the parallel sweep-bench "
                              "modes (sweep mode only)")
    bench_p.add_argument("--seeds", default="0,1",
                         help="comma-separated seeds for the sweep-bench "
                              "grid (sweep mode only)")
    bench_p.add_argument("--apps", default=None,
        help="comma-separated benchmark names (default depends on mode)")
    bench_p.add_argument("--geometry", default="32K_2w",
                         choices=sorted(GEOMETRIES))
    bench_p.add_argument("--scheme", default=None,
                         choices=[s.value for s in IndexingScheme])
    bench_p.add_argument("--variant", default=None,
                         choices=[v.value for v in SiptVariant])
    bench_p.add_argument("--way-prediction", action="store_true")
    bench_p.add_argument("--accesses", type=int, default=None,
                         help="accesses per trace (default: 20000 for "
                              "hotpath, 8000 for sweep)")
    bench_p.add_argument("--interval", type=int, default=None, metavar="N",
                         help="bench the interval-sampling replay path "
                              "(simulate(..., interval=N))")
    bench_p.add_argument("--checkpoint-every", type=int, default=None,
                         metavar="N",
                         help="bench the checkpointed replay path "
                              "(snapshot every N accesses to a temp dir)")
    bench_p.add_argument("--repeats", type=int, default=3,
                         help="timed replays per app; best is kept")
    bench_p.add_argument("--profile", action="store_true",
                         help="include a cProfile hot-function table")
    bench_p.add_argument("--label", default=None,
                         help="trajectory-point label (file name suffix)")
    bench_p.add_argument("--out", default=".",
                         help="output file or directory for BENCH_*.json")
    bench_p.add_argument("--check", metavar="BASELINE_JSON", default=None,
                         help="fail (exit 1) if aggregate throughput "
                              "regresses past --tolerance vs this point")
    bench_p.add_argument("--tolerance", type=float, default=0.30,
                         help="allowed fractional throughput loss for "
                              "--check (default 0.30)")
    engine(bench_p)

    stats_p = sub.add_parser(
        "stats", help="dump/diff metrics snapshots, export interval CSV")
    stats_p.add_argument("--app", default=None,
                         help="benchmark to simulate (see `list`)")
    stats_p.add_argument("--geometry", default="32K_2w",
                         choices=sorted(GEOMETRIES))
    stats_p.add_argument("--core", default="ooo",
                         choices=("ooo", "ooo-detailed", "inorder"))
    stats_p.add_argument("--scheme", default=None,
                         choices=[s.value for s in IndexingScheme])
    stats_p.add_argument("--variant", default=None,
                         choices=[v.value for v in SiptVariant])
    stats_p.add_argument("--condition", default="normal",
                         choices=sorted(CONDITIONS))
    stats_p.add_argument("--accesses", type=int, default=30_000)
    stats_p.add_argument("--way-prediction", action="store_true")
    stats_p.add_argument("--filter", default=None, metavar="PREFIX",
                         help="only print metrics under this namespace "
                              "prefix (e.g. sipt., predictor.)")
    stats_p.add_argument("--out", default=None, metavar="JSON",
                         help="save the end-of-run snapshot "
                              "(repro-snapshot-1 schema)")
    stats_p.add_argument("--interval", type=int, default=None, metavar="N",
                         help="also sample a per-N-accesses time-series")
    stats_p.add_argument("--intervals-out", default=None, metavar="JSONL",
                         help="interval series path "
                              "(default intervals_<app>.jsonl)")
    stats_p.add_argument("--export-csv", default=None, metavar="CSV",
                         help="also export the interval series as "
                              "plot-ready CSV")
    stats_p.add_argument("--diff", nargs=2, default=None,
                         metavar=("BEFORE", "AFTER"),
                         help="print per-metric delta between two saved "
                              "snapshots instead of simulating")
    stats_p.add_argument("--zeros", action="store_true",
                         help="with --diff, also print zero deltas")
    engine(stats_p)

    trace_p = sub.add_parser(
        "trace", help="record sampled per-access SIPT decisions")
    common(trace_p, with_app=True)
    trace_p.add_argument("--sample", type=int, default=1, metavar="K",
                         help="record every K-th access (default 1)")
    trace_p.add_argument("--capacity", type=int, default=4096, metavar="M",
                         help="ring-buffer size: keep the last M sampled "
                              "records (default 4096)")
    trace_p.add_argument("--tail", type=int, default=10, metavar="N",
                         help="print the last N decisions (default 10)")
    trace_p.add_argument("--out", default=None, metavar="JSONL",
                         help="dump the buffered records as JSONL")

    validate_p = sub.add_parser(
        "validate", help="score the paper's headline claims (smoke check)")
    validate_p.add_argument("--accesses", type=int, default=12_000)
    validate_p.add_argument(
        "--min-pass", type=int, default=None, metavar="N",
        help="succeed when at least N claims pass (default: all)")
    resilience(validate_p)
    return parser


COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "suite": cmd_suite,
    "sweep": cmd_sweep,
    "jobs": cmd_jobs,
    "store": cmd_store,
    "mix": cmd_mix,
    "bench": cmd_bench,
    "designspace": cmd_designspace,
    "stats": cmd_stats,
    "trace": cmd_trace,
    "validate": cmd_validate,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; maps typed errors to the documented exit codes."""
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except WorkerCrash as exc:
        print(f"crashed: {exc} (journal, if any, is preserved — "
              "rerun with --resume)", file=sys.stderr)
        return EXIT_CRASHED
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted (journal, if any, is preserved — rerun with "
              "--resume)", file=sys.stderr)
        return 130
    finally:
        # An --inject fault plan is process-global; disarm it so
        # repeated main() calls in one process (tests) stay isolated.
        faultfs.clear_plan()


if __name__ == "__main__":
    sys.exit(main())
