"""Persistent content-addressed store of completed simulation cells.

PR 5's :class:`~repro.sim.warmstate.WarmStateCache` proved the core
idea — completed, deterministic runs are worth more as lookups than as
recomputations — but scoped it to one sweep: its in-memory layer died
with the ``run_sweep`` call and its tmpdir layer with the campaign.
This module generalizes that cache into a **persistent,
content-addressed result store**: every completed (trace, system)
simulation is keyed by a canonical digest of *what was simulated*, and
any later sweep — same process, next week, another user on the same
box — that asks for the same cell gets the finished
:class:`~repro.sim.results.SimResult` back instead of a simulation.
That is the ROADMAP's sweep-as-a-service architecture: most traffic
becomes lookups, not simulations.

Digest scheme (``repro-store-1``)
---------------------------------
A cell's identity is the SHA-256 over the canonical JSON
(:func:`repro.stateutil.canonical_json` — sorted keys, compact
separators, so the same logical payload always maps to the same bytes
in every process; no ``PYTHONHASHSEED``-dependent ``hash()`` anywhere)
of::

    {"schema": "repro-store-1",
     "trace":  {app, condition, n_accesses,
                fingerprint},          # CRC-32 over the column bytes
     "system": {name, core, l1: {...}, l2/llc geometry, ...},
     "conditions": {...}}              # engine-relevant extras

* ``trace`` is :func:`repro.sim.checkpoint.trace_identity` — the same
  content binding checkpoints verify, so two traces that merely share
  a label can never alias.
* ``system`` is the **full config dict** (every
  :class:`~repro.sim.config.SystemConfig` and nested
  :class:`~repro.sim.config.L1Config` field, enums by value), not just
  the display name — a renamed-but-different config can never alias
  either.
* ``conditions`` carries engine-relevant run conditions. The replay
  ``engine`` is deliberately **excluded**: the kernel is byte-identical
  to the python oracle (CI enforces it), so both engines share
  entries. Side-channel modes (interval sampling, decision tracing)
  never reach the store at all — the sweep only consults it for plain
  result rows, mirroring the warm-state reuse rules.

On-disk layout (versioned)
--------------------------
::

    <root>/                      # REPRO_STORE_DIR, default
    │                            # ~/.cache/repro-store
    ├── v1/<aa>/<digest>.result.pkl   # pickled SimResult
    ├── v1/<aa>/<digest>.state.json   # optional repro-ckpt-1 snapshot
    ├── v1/<aa>/<digest>.meta.json    # human-readable provenance
    ├── jobs/<job-id>.json            # repro.store.jobs
    └── pending/<digest>.json         # in-flight claims (advisory)

``<aa>`` is the first two digest hex chars (fan-out keeps directory
listings sane at millions of entries). The ``v1/`` component is the
layout version: a future incompatible layout writes ``v2/`` and old
entries simply stop being found — version skew degrades to a cold run,
never an error.

Durability and failure policy
-----------------------------
* every write is atomic (temp file + ``os.replace`` via
  :mod:`repro.ioutil`), so readers never observe a torn entry and
  concurrent writers racing on one digest are benign — determinism
  means they write identical bytes;
* a corrupt, truncated, or unpicklable entry is a **miss**, never an
  error — the cell simulates, and the damaged file is best-effort
  deleted so it cannot keep masking the slot;
* the store is size-bounded: :meth:`ResultStore.gc` evicts entries in
  LRU order (hits refresh an entry's mtime) until the store fits
  ``REPRO_STORE_CAP`` bytes.

Trust domain: result entries are pickles, so the store root must be a
directory the user trusts (their own cache dir, not a world-writable
drop box) — the same rule the warm-state tmpdir already followed. See
``docs/sweep-service.md`` for the operations manual.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import time
from dataclasses import asdict
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..errors import CheckpointError, ConfigError
from ..ioutil import (atomic_write_bytes, atomic_write_text, io_guard,
                      read_bytes, read_text)
from ..stateutil import canonical_json

#: Digest-payload schema tag; bump when the identity payload changes.
SCHEMA = "repro-store-1"

#: On-disk layout version directory; bump on incompatible layout.
LAYOUT = "v1"

#: Default size bound (bytes) enforced by :meth:`ResultStore.gc`.
DEFAULT_CAP_BYTES = 512 * 1024 * 1024

#: Age (seconds) past which an orphaned ``*.tmp`` file — the litter a
#: SIGKILL between ``mkstemp`` and ``os.replace`` leaves behind — is
#: swept by :meth:`ResultStore.gc`. Generous enough that a live
#: writer's in-flight temp file is never collected out from under it.
TMP_MAX_AGE_S = 3600.0


def _env_bytes(name: str, default: int) -> int:
    """An integer byte-count env override, validated at the boundary."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"environment variable {name} must be an integer byte "
            f"count, got {raw!r}") from None
    if value < 0:
        raise ConfigError(
            f"environment variable {name} must be >= 0, got {value}")
    return value


def default_store_root() -> Path:
    """The store root: ``REPRO_STORE_DIR`` or ``~/.cache/repro-store``.

    ``XDG_CACHE_HOME`` is honored when set (the conventional override
    for relocating caches), ``REPRO_STORE_DIR`` wins over both.
    """
    env = os.environ.get("REPRO_STORE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-store"


def _jsonable(value: Any) -> Any:
    """Recursively convert a config payload to canonical-JSON-safe form."""
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def system_payload(system) -> Dict[str, Any]:
    """A :class:`~repro.sim.config.SystemConfig` as a canonical dict.

    Every field of the frozen dataclass (and the nested
    :class:`~repro.sim.config.L1Config`) appears, enums by value — the
    *full* configuration, so the digest can never alias two systems
    that share a display name but differ in any knob.
    """
    return _jsonable(asdict(system))


def cell_digest(trace, system,
                conditions: Optional[Dict[str, Any]] = None) -> str:
    """The content digest identifying one completed simulation cell.

    SHA-256 hex over the canonical JSON of (schema tag, trace identity,
    full system config, engine-relevant conditions). Stable across
    processes and Python versions by construction — only
    ``canonical_json`` and content hashes, no ``hash()``.
    """
    from ..sim.checkpoint import trace_identity
    payload = {"schema": SCHEMA,
               "trace": trace_identity(trace),
               "system": system_payload(system),
               "conditions": _jsonable(dict(conditions or {}))}
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")).hexdigest()


class ResultStore:
    """Persistent content-addressed store of completed cell results.

    Parameters
    ----------
    root:
        Store root directory (created lazily on first write). ``None``
        resolves :func:`default_store_root`.
    cap_bytes:
        Size bound enforced by :meth:`gc`; ``None`` reads
        ``REPRO_STORE_CAP`` (default :data:`DEFAULT_CAP_BYTES`);
        ``0`` disables eviction.

    Entries are looked up and written by digest (:meth:`digest` /
    :func:`cell_digest`); hit/miss/store tallies live on the instance
    (``hits``/``misses``/``stores``/``evicted``) for the CLI epilogue,
    alongside the degradation counters
    (``read_failures``/``write_failures``/``tmp_swept``).

    Degradation policy (see ``docs/robustness.md``): a read that fails
    with a real I/O error — not just a missing file — counts a
    ``read_failure`` and is a miss; the first *persistent* write
    failure (retries already exhausted inside :mod:`repro.ioutil`)
    prints one stderr warning and degrades the store to read-only for
    the rest of the run. Neither ever raises.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None,
                 cap_bytes: Optional[int] = None):
        self.root = Path(root) if root else default_store_root()
        if cap_bytes is None:
            cap_bytes = _env_bytes("REPRO_STORE_CAP", DEFAULT_CAP_BYTES)
        self.cap_bytes = cap_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evicted = 0
        self.read_failures = 0
        self.write_failures = 0
        self.tmp_swept = 0
        self._writes_disabled = False
        self._warned_reads = False

    @property
    def degraded(self) -> bool:
        """Whether any store surface degraded (I/O failures seen)."""
        return bool(self.read_failures or self.write_failures)

    @property
    def writes_disabled(self) -> bool:
        """Whether persistent write failure switched us to read-only."""
        return self._writes_disabled

    def _read_failed(self, digest: str, exc: OSError) -> None:
        """Count one failed entry read; warn on the first only."""
        self.read_failures += 1
        if not self._warned_reads:
            self._warned_reads = True
            print(f"[store] read of entry {digest[:12]} failed ({exc}); "
                  "degraded: treating damaged entries as misses",
                  file=sys.stderr)

    def _write_failed(self, what: str, path: Path, exc: OSError) -> None:
        """Count one failed publication; disable writes + warn once."""
        self.write_failures += 1
        if not self._writes_disabled:
            self._writes_disabled = True
            print(f"[store] {what} write to {path} failed ({exc}); "
                  "degraded: store is read-only for the rest of this "
                  "run", file=sys.stderr)

    # -- layout -------------------------------------------------------

    @property
    def layout_dir(self) -> Path:
        """The versioned entry directory (``<root>/v1``)."""
        return self.root / LAYOUT

    def digest(self, trace, system,
               conditions: Optional[Dict[str, Any]] = None) -> str:
        """Digest for (``trace``, ``system``); see :func:`cell_digest`."""
        return cell_digest(trace, system, conditions)

    def result_path(self, digest: str) -> Path:
        """Where ``digest``'s pickled ``SimResult`` lives."""
        return self.layout_dir / digest[:2] / f"{digest}.result.pkl"

    def state_path(self, digest: str) -> Path:
        """Where ``digest``'s rendered repro-ckpt-1 snapshot lives."""
        return self.layout_dir / digest[:2] / f"{digest}.state.json"

    def meta_path(self, digest: str) -> Path:
        """Where ``digest``'s human-readable provenance record lives."""
        return self.layout_dir / digest[:2] / f"{digest}.meta.json"

    def contains(self, digest: str) -> bool:
        """Whether a result entry for ``digest`` exists (unverified)."""
        return self.result_path(digest).exists()

    # -- results ------------------------------------------------------

    def fetch_result(self, digest: str):
        """The stored ``SimResult`` for ``digest``, or ``None``.

        A hit refreshes the entry's mtime (the GC's LRU clock). A
        corrupt, truncated, or wrong-typed entry is a miss — the
        damaged file is best-effort removed so the next completed run
        rewrites the slot — and never an error. The read goes through
        the :mod:`repro.ioutil` choke point, so transient EIO/ESTALE
        retries before a real I/O failure counts a ``read_failure``
        (still a miss — damage is never an error).
        """
        from ..sim.results import SimResult
        path = self.result_path(digest)
        try:
            data = read_bytes(path)
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as exc:
            self._read_failed(digest, exc)
            self._discard(digest)
            self.misses += 1
            return None
        try:
            result = pickle.loads(data)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            self._discard(digest)
            self.misses += 1
            return None
        if not isinstance(result, SimResult):
            self._discard(digest)
            self.misses += 1
            return None
        self._touch(path)
        self.hits += 1
        return result

    def store_result(self, digest: str, result,
                     meta: Optional[Dict[str, Any]] = None) -> None:
        """Publish a completed run's result under ``digest``.

        Idempotent: an existing entry is only touched (LRU refresh),
        never rewritten — determinism means a rewrite would produce
        the same bytes. Writes are atomic and best-effort: a store
        that cannot be written (read-only root, full disk) degrades to
        read-only with one stderr warning, because persistence is an
        optimization, never a correctness requirement.
        """
        path = self.result_path(digest)
        if path.exists():
            self._touch(path)
            return
        if self._writes_disabled:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(path, pickle.dumps(result), fsync=False)
            if meta is not None:
                atomic_write_text(
                    self.meta_path(digest),
                    canonical_json({"schema": SCHEMA, **_jsonable(meta)})
                    + "\n",
                    fsync=False)
        except OSError as exc:
            self._write_failed("result", path, exc)
            return
        self.stores += 1

    # -- state snapshots ----------------------------------------------

    def fetch_state(self, digest: str, trace=None,
                    system_name: Optional[str] = None
                    ) -> Optional[Dict[str, Any]]:
        """The verified snapshot payload for ``digest``, or ``None``.

        The entry text is verified exactly like a checkpoint file
        (schema, digest line, trace identity, system name — see
        :func:`repro.sim.checkpoint.verify_checkpoint_text`); anything
        that fails verification is a miss, and the damaged entry is
        best-effort removed.
        """
        from ..sim.checkpoint import verify_checkpoint_text
        path = self.state_path(digest)
        try:
            text = read_text(path)
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as exc:
            self._read_failed(digest, exc)
            self.misses += 1
            return None
        try:
            payload = verify_checkpoint_text(
                text, source=f"store entry {digest[:12]}", trace=trace,
                system_name=system_name)
        except CheckpointError:
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self._touch(path)
        self.hits += 1
        return payload

    def store_state(self, digest: str, text: str) -> None:
        """Publish a rendered repro-ckpt-1 snapshot under ``digest``.

        ``text`` is the two-line digest-protected format produced by
        :func:`repro.sim.checkpoint.render_checkpoint` — stored
        verbatim so the verification path is shared end to end with
        checkpoints and the warm-state cache. Atomic, idempotent,
        best-effort, like :meth:`store_result`.
        """
        path = self.state_path(digest)
        if path.exists():
            self._touch(path)
            return
        if self._writes_disabled:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, text, fsync=False)
        except OSError as exc:
            self._write_failed("state", path, exc)
            return
        self.stores += 1

    # -- maintenance --------------------------------------------------

    def _touch(self, path: Path) -> None:
        """Best-effort LRU-clock refresh (guarded, failure-silent)."""
        try:
            io_guard("touch", path)
            os.utime(path, None)
        except OSError:
            pass

    def _discard(self, digest: str) -> None:
        """Best-effort removal of every file of one (corrupt) entry."""
        for path in (self.result_path(digest), self.state_path(digest),
                     self.meta_path(digest)):
            try:
                path.unlink()
            except OSError:
                pass

    def entries(self) -> Iterable[Tuple[str, List[Path]]]:
        """Iterate ``(digest, files)`` for every entry in the layout.

        In-flight/orphaned ``*.tmp`` files are not entries and are
        excluded — they belong to :meth:`iter_tmp_litter` and the age
        sweep in :meth:`gc`.
        """
        groups: Dict[str, List[Path]] = {}
        if not self.layout_dir.is_dir():
            return []
        for shard in sorted(self.layout_dir.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.iterdir()):
                if path.name.endswith(".tmp"):
                    continue
                digest = path.name.split(".", 1)[0]
                groups.setdefault(digest, []).append(path)
        return sorted(groups.items())

    def iter_tmp_litter(self, min_age_s: float = 0.0
                        ) -> Iterable[Path]:
        """Yield ``*.tmp`` files under the root older than ``min_age_s``.

        These are mkstemp temp files orphaned by a kill between
        creation and the atomic ``os.replace`` — invisible to
        :meth:`entries`/:meth:`total_bytes` by design, so without a
        sweep they accumulate forever. ``min_age_s=0`` yields all of
        them (the doctor's scan); :meth:`gc` passes
        :data:`TMP_MAX_AGE_S` so live writers are never raced.
        """
        if not self.root.is_dir():
            return
        now = time.time()
        for path in sorted(self.root.rglob("*.tmp")):
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue
            if age >= min_age_s:
                yield path

    def sweep_tmp_litter(self, min_age_s: float = TMP_MAX_AGE_S) -> int:
        """Unlink aged ``*.tmp`` litter; returns the number removed."""
        swept = 0
        for path in self.iter_tmp_litter(min_age_s):
            try:
                path.unlink()
            except OSError:
                continue
            swept += 1
        self.tmp_swept += swept
        return swept

    def total_bytes(self) -> int:
        """Total bytes currently held by store entries."""
        total = 0
        for _, files in self.entries():
            for path in files:
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        return total

    def gc(self, cap_bytes: Optional[int] = None) -> Tuple[int, int]:
        """Evict least-recently-used entries until the store fits.

        Entry recency is the newest mtime across its files — refreshed
        on every hit — so eviction order is true LRU, not
        insertion order. Returns ``(entries_removed, bytes_freed)``;
        ``(0, 0)`` when already under the cap or the cap is 0
        (unbounded). Races with concurrent writers are benign: an
        entry evicted while another process re-stores it just costs
        one extra simulation later. Every call also age-sweeps
        orphaned ``*.tmp`` litter (see :meth:`sweep_tmp_litter`,
        tallied in ``tmp_swept``) — even when the cap is unbounded.
        """
        self.sweep_tmp_litter()
        cap = self.cap_bytes if cap_bytes is None else cap_bytes
        if not cap:
            return (0, 0)
        aged: List[Tuple[float, int, str, List[Path]]] = []
        total = 0
        for digest, files in self.entries():
            size = 0
            newest = 0.0
            for path in files:
                try:
                    stat = path.stat()
                except OSError:
                    continue
                size += stat.st_size
                newest = max(newest, stat.st_mtime)
            aged.append((newest, size, digest, files))
            total += size
        if total <= cap:
            return (0, 0)
        removed = 0
        freed = 0
        for newest, size, digest, files in sorted(aged):
            if total - freed <= cap:
                break
            for path in files:
                try:
                    path.unlink()
                except OSError:
                    pass
            removed += 1
            freed += size
        self.evicted += removed
        return (removed, freed)
