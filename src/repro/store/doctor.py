"""Self-healing store maintenance: scan, report, repair.

A long-lived store root on a shared filesystem accumulates damage that
no single sweep is positioned to clean up: ``*.tmp`` litter from
writers SIGKILLed between ``mkstemp`` and ``os.replace``, entries
truncated or corrupted by torn NFS client writes, pending markers
whose owner died (lease expired) or whose job record is gone, markers
that outlived their finished cell because a ``release_claims`` unlink
failed, and job records that no longer parse. Each of these degrades
gracefully at read time (damage is a miss), but the litter costs disk,
masks store slots, and makes ``jobs status`` lie about in-flight work.

``repro store doctor`` is the offline janitor: :func:`diagnose` scans
the whole root and returns typed :class:`Finding` records;
:func:`repair` applies each finding's fix. The CLI reports findings by
default and fixes them only under ``--repair``. Every fix is safe
against re-running sweeps because store writes are idempotent and
content-addressed: removing a damaged entry or stale marker costs at
most one redundant simulation, never correctness.

The doctor assumes no *writer* is mid-flight on the root while it
repairs (it removes ``*.tmp`` files regardless of age — unlike the
conservative age-gated sweep in :meth:`ResultStore.gc`); run it from
cron or before a campaign, not concurrently with one.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple

from ..errors import CheckpointError, ConfigError
from .jobs import (_marker_owner, _marker_payload, jobs_dir, load_job,
                   pending_dir)
from .resultstore import ResultStore

#: Finding categories, in report order.
CATEGORIES = ("orphan-tmp", "corrupt-result", "corrupt-state",
              "corrupt-meta", "corrupt-marker", "dangling-marker",
              "expired-lease", "stuck-marker", "corrupt-job")


@dataclass
class Finding:
    """One diagnosed problem: what, where, and how repair fixes it."""

    category: str    # one of CATEGORIES
    path: Path       # the offending file
    detail: str      # human-readable diagnosis
    #: every path repair should unlink (a corrupt entry discards all
    #: of its sibling files, not just the one that failed to parse)
    remove: List[Path] = field(default_factory=list)

    def __post_init__(self):
        """Validate the category and default ``remove`` to ``path``."""
        if self.category not in CATEGORIES:
            raise ConfigError(f"unknown doctor finding category "
                              f"{self.category!r}")
        if not self.remove:
            self.remove = [self.path]


def _entry_findings(store: ResultStore) -> List[Finding]:
    """Scan v1 entries for corrupt/truncated files."""
    from ..sim.checkpoint import verify_checkpoint_text
    from ..sim.results import SimResult
    findings: List[Finding] = []
    for digest, files in store.entries():
        siblings = list(files)
        for path in files:
            if path.name.endswith(".result.pkl"):
                try:
                    ok = isinstance(pickle.loads(path.read_bytes()),
                                    SimResult)
                except Exception:
                    ok = False
                if not ok:
                    findings.append(Finding(
                        "corrupt-result", path,
                        f"entry {digest[:12]} result does not "
                        "unpickle to a SimResult", remove=siblings))
            elif path.name.endswith(".state.json"):
                try:
                    verify_checkpoint_text(
                        path.read_text(),
                        source=f"store entry {digest[:12]}")
                except (OSError, CheckpointError) as exc:
                    findings.append(Finding(
                        "corrupt-state", path,
                        f"entry {digest[:12]} snapshot fails "
                        f"verification: {exc}"))
            elif path.name.endswith(".meta.json"):
                try:
                    json.loads(path.read_text())
                except (OSError, json.JSONDecodeError) as exc:
                    findings.append(Finding(
                        "corrupt-meta", path,
                        f"entry {digest[:12]} metadata is not JSON: "
                        f"{exc}"))
    return findings


def _marker_findings(store: ResultStore) -> List[Finding]:
    """Scan pending markers for corruption, danglers, expired leases."""
    findings: List[Finding] = []
    root = pending_dir(store)
    if not root.is_dir():
        return findings
    for path in sorted(root.glob("*.json")):
        digest = path.stem
        payload = _marker_payload(store, digest)
        if payload is None or not payload.get("job"):
            findings.append(Finding(
                "corrupt-marker", path,
                f"pending marker {digest[:12]} is unreadable or "
                "missing its owning job id"))
            continue
        if store.contains(digest):
            findings.append(Finding(
                "stuck-marker", path,
                f"cell {digest[:12]} is finished in the store but "
                "its claim was never released"))
            continue
        owner = str(payload["job"])
        if not (jobs_dir(store) / f"{owner}.json").exists():
            findings.append(Finding(
                "dangling-marker", path,
                f"pending marker {digest[:12]} names job {owner} "
                "whose record no longer exists"))
            continue
        if _marker_owner(store, digest) is None:
            stamp = payload.get("owner") or {}
            who = (f"pid {stamp.get('pid')} on {stamp.get('host')}"
                   if stamp else "an unknown owner")
            findings.append(Finding(
                "expired-lease", path,
                f"claim on cell {digest[:12]} by job {owner} "
                f"({who}) has an expired or missing lease"))
    return findings


def _job_findings(store: ResultStore) -> List[Finding]:
    """Scan job records for ones that no longer load."""
    findings: List[Finding] = []
    root = jobs_dir(store)
    if not root.is_dir():
        return findings
    for path in sorted(root.glob("*.json")):
        try:
            load_job(store, path.stem)
        except ConfigError as exc:
            findings.append(Finding(
                "corrupt-job", path,
                f"job record {path.stem} does not load: {exc}"))
    return findings


def diagnose(store: ResultStore) -> List[Finding]:
    """Full store-root scan; returns findings in report order.

    Covers ``*.tmp`` litter anywhere under the root, every v1 entry
    file, every pending marker, and every job record. Read-only — the
    scan never modifies the store.
    """
    findings: List[Finding] = [
        Finding("orphan-tmp", path,
                "temp file orphaned by a killed writer")
        for path in store.iter_tmp_litter()]
    findings.extend(_entry_findings(store))
    findings.extend(_marker_findings(store))
    findings.extend(_job_findings(store))
    order = {category: rank for rank, category in enumerate(CATEGORIES)}
    findings.sort(key=lambda f: (order[f.category], str(f.path)))
    return findings


def repair(store: ResultStore,
           findings: List[Finding]) -> Tuple[int, int]:
    """Apply every finding's fix; returns ``(fixed, failed)``.

    All current fixes are removals (litter, damaged entry files, stale
    markers, unloadable job records) — safe because the store is
    content-addressed and idempotent, so anything a fix removes is
    reconstructed by the next sweep or submit that needs it. A finding
    counts as fixed only when every file it names is gone afterwards.
    """
    fixed = failed = 0
    for finding in findings:
        ok = True
        for path in finding.remove:
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            except OSError:
                ok = False
        if ok:
            fixed += 1
        else:
            failed += 1
    return fixed, failed


def summarize(findings: List[Finding]) -> Dict[str, int]:
    """Findings tallied by category (only nonzero categories appear)."""
    tally: Dict[str, int] = {}
    for finding in findings:
        tally[finding.category] = tally.get(finding.category, 0) + 1
    return tally
