"""Content-addressed result store + async job front end for sweeps.

Public surface of the sweep-as-a-service layer (operations manual:
``docs/sweep-service.md``):

* :class:`~repro.store.resultstore.ResultStore` — the persistent
  content-addressed store of completed (trace, system) simulation
  results and state snapshots, with canonical digests
  (:func:`~repro.store.resultstore.cell_digest`), a versioned
  atomic-write layout under ``REPRO_STORE_DIR``
  (default ``~/.cache/repro-store``), corrupt-entry-as-miss reads, and
  size-bounded LRU GC.
* :mod:`repro.store.jobs` — the journal behind ``repro jobs
  submit/status/run/result``: grids deduped against the store at
  submission, in-flight cells shared between overlapping jobs through
  lease-stamped pending markers (owner pid + host, TTL renewed by
  :class:`~repro.store.jobs.LeaseRenewer` while a run executes, dead
  owners expire and are stolen).
* :mod:`repro.store.doctor` — the ``repro store doctor`` scan/repair
  pass for tmp litter, corrupt entries, expired leases, and dangling
  job state.

Wired into :func:`repro.sim.sweep.run_sweep` via ``store=`` (CLI:
``sweep --store``): hits stream straight from the store, only misses
simulate, and the CSV stays byte-identical to a cold run.
"""

from .doctor import (
    CATEGORIES,
    Finding,
    diagnose,
    repair,
    summarize,
)
from .jobs import (
    DEFAULT_LEASE_TTL_S,
    JOB_SCHEMA,
    LeaseRenewer,
    job_id_for,
    job_status,
    jobs_dir,
    lease_ttl,
    list_jobs,
    load_job,
    pending_dir,
    release_claims,
    renew_leases,
    submit_job,
)
from .resultstore import (
    DEFAULT_CAP_BYTES,
    LAYOUT,
    SCHEMA,
    TMP_MAX_AGE_S,
    ResultStore,
    cell_digest,
    default_store_root,
    system_payload,
)

__all__ = [
    "CATEGORIES",
    "DEFAULT_CAP_BYTES",
    "DEFAULT_LEASE_TTL_S",
    "Finding",
    "JOB_SCHEMA",
    "LAYOUT",
    "LeaseRenewer",
    "SCHEMA",
    "ResultStore",
    "TMP_MAX_AGE_S",
    "cell_digest",
    "default_store_root",
    "diagnose",
    "job_id_for",
    "job_status",
    "jobs_dir",
    "lease_ttl",
    "list_jobs",
    "load_job",
    "pending_dir",
    "release_claims",
    "renew_leases",
    "repair",
    "submit_job",
    "summarize",
    "system_payload",
]
