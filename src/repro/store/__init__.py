"""Content-addressed result store + async job front end for sweeps.

Public surface of the sweep-as-a-service layer (operations manual:
``docs/sweep-service.md``):

* :class:`~repro.store.resultstore.ResultStore` — the persistent
  content-addressed store of completed (trace, system) simulation
  results and state snapshots, with canonical digests
  (:func:`~repro.store.resultstore.cell_digest`), a versioned
  atomic-write layout under ``REPRO_STORE_DIR``
  (default ``~/.cache/repro-store``), corrupt-entry-as-miss reads, and
  size-bounded LRU GC.
* :mod:`repro.store.jobs` — the journal behind ``repro jobs
  submit/status/run/result``: grids deduped against the store at
  submission, in-flight cells shared between overlapping jobs through
  advisory pending markers.

Wired into :func:`repro.sim.sweep.run_sweep` via ``store=`` (CLI:
``sweep --store``): hits stream straight from the store, only misses
simulate, and the CSV stays byte-identical to a cold run.
"""

from .jobs import (
    JOB_SCHEMA,
    job_id_for,
    job_status,
    jobs_dir,
    list_jobs,
    load_job,
    pending_dir,
    release_claims,
    submit_job,
)
from .resultstore import (
    DEFAULT_CAP_BYTES,
    LAYOUT,
    SCHEMA,
    ResultStore,
    cell_digest,
    default_store_root,
    system_payload,
)

__all__ = [
    "DEFAULT_CAP_BYTES",
    "JOB_SCHEMA",
    "LAYOUT",
    "SCHEMA",
    "ResultStore",
    "cell_digest",
    "default_store_root",
    "job_id_for",
    "job_status",
    "jobs_dir",
    "list_jobs",
    "load_job",
    "pending_dir",
    "release_claims",
    "submit_job",
    "system_payload",
]
