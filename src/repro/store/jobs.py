"""Async job journal over the content-addressed result store.

The sweep-as-a-service front end: a **job** is a submitted design-space
grid, journaled under the store root so it survives the submitting
process. The lifecycle is deliberately simple and daemon-free —
each step is one CLI invocation (``repro jobs submit/status/run/
result``), so the "service" is the filesystem plus determinism:

* **submit** dedupes the grid against the store (cells whose digest is
  already present need no work), claims the remaining digests with
  advisory *pending markers*, and journals the job. Submission is
  idempotent and content-addressed: the job id is a digest of the grid
  payload, so resubmitting the same grid lands on the same job — and
  two *overlapping* grids share in-flight cells through the markers
  (the second submitter sees the first's claim and counts the cell as
  in flight instead of claiming it again).
* **run** executes one job's missing cells through
  :func:`repro.sim.sweep.run_sweep` with the store attached — every
  completed cell lands in the store (visible to every other job
  immediately), and claims for finished digests are released.
* **status** recomputes each job's done / in-flight / pending tallies
  live against the store — there is no state to go stale.
* **result** composes the job's CSV purely from store entries
  (byte-identical to a cold ``sweep`` run of the same grid) once every
  cell is present.

Pending markers are *advisory leases*: they carry dedupe information
between cooperating submitters, never correctness. Each marker is
stamped with its owner (pid + host) and an expiry deadline; ``jobs
run`` renews its claims from a background :class:`LeaseRenewer` on the
watchdog-heartbeat cadence (every TTL/3), so a live owner's markers
never lapse while a SIGKILLed owner's markers expire after
:func:`lease_ttl` seconds and overlapping submissions **steal** them.
That makes shared (rsync/NFS) store roots safe: a dead owner wedges
nothing for longer than one TTL, and stealing is harmless because
store writes are idempotent — the worst case is one redundant
simulation. Markers whose owning job record no longer exists, whose
lease has expired, or that predate the lease schema are all treated as
unclaimed.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..ioutil import atomic_write_text, read_text
from ..stateutil import canonical_json
from .resultstore import ResultStore

#: Job-record schema tag.
JOB_SCHEMA = "repro-job-1"

#: Default pending-marker lease TTL (seconds). Long enough that one
#: slow cell plus scheduler noise cannot lapse a live owner's claim
#: between renewals (which come every TTL/3), short enough that a dead
#: owner stops wedging overlapping jobs within minutes.
DEFAULT_LEASE_TTL_S = 600.0


def lease_ttl() -> float:
    """The pending-marker lease TTL: ``REPRO_LEASE_TTL`` or default."""
    raw = os.environ.get("REPRO_LEASE_TTL")
    if raw is None:
        return DEFAULT_LEASE_TTL_S
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(
            "environment variable REPRO_LEASE_TTL must be a number of "
            f"seconds, got {raw!r}") from None
    if value <= 0:
        raise ConfigError(
            f"environment variable REPRO_LEASE_TTL must be > 0, "
            f"got {value}")
    return value


def _now() -> float:
    """Lease clock (module-level so tests can advance time)."""
    return time.time()


def _owner_stamp() -> Dict[str, Any]:
    """This process's owner identity for a lease stamp."""
    return {"pid": os.getpid(), "host": socket.gethostname()}


def jobs_dir(store: ResultStore) -> Path:
    """The job-record directory under the store root."""
    return store.root / "jobs"


def pending_dir(store: ResultStore) -> Path:
    """The advisory in-flight-claim directory under the store root."""
    return store.root / "pending"


def job_id_for(grid: Dict[str, Any]) -> str:
    """Deterministic job id: short digest of the canonical grid payload.

    Content-addressed like the cells themselves, so submitting an
    identical grid twice is the *same* job — the second submit is a
    no-op refresh, not a duplicate.
    """
    return hashlib.sha256(
        canonical_json(grid).encode("utf-8")).hexdigest()[:12]


def _marker_path(store: ResultStore, digest: str) -> Path:
    return pending_dir(store) / f"{digest}.json"


def _marker_payload(store: ResultStore,
                    digest: str) -> Optional[Dict[str, Any]]:
    """The raw marker dict for ``digest``, or ``None`` when unreadable.

    Damage (missing, corrupt, injected I/O failure) is a miss — an
    unreadable marker reads as unclaimed, which only risks one
    redundant simulation, never a wedge.
    """
    try:
        payload = json.loads(read_text(_marker_path(store, digest)))
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _marker_owner(store: ResultStore, digest: str) -> Optional[str]:
    """The job id holding a *live lease* on ``digest``, or ``None``.

    A marker reads as unclaimed when any of these hold: it is missing
    or unreadable; its owning job record has been deleted; it carries
    no ``expires`` deadline (pre-lease schema); or its lease has
    expired — the dead-owner case that lets overlapping submissions
    steal the claim.
    """
    payload = _marker_payload(store, digest)
    if payload is None:
        return None
    owner = payload.get("job")
    if not owner:
        return None
    if not (jobs_dir(store) / f"{owner}.json").exists():
        return None
    expires = payload.get("expires")
    if not isinstance(expires, (int, float)) or expires <= _now():
        return None
    return str(owner)


def _stamp_claim(store: ResultStore, job_id: str, digest: str,
                 ttl: float) -> None:
    """Write ``digest``'s pending marker with a fresh lease stamp."""
    atomic_write_text(
        _marker_path(store, digest),
        canonical_json({"schema": JOB_SCHEMA, "job": job_id,
                        "digest": digest, "owner": _owner_stamp(),
                        "expires": _now() + ttl}) + "\n",
        fsync=False)


def submit_job(store: ResultStore, grid: Dict[str, Any],
               cells: Sequence[Tuple[Dict[str, Any], str]],
               ttl: Optional[float] = None) -> Dict[str, Any]:
    """Journal a grid as a job; dedupe and claim its missing cells.

    ``grid`` is the JSON-safe grid description (the CLI's sweep flags),
    ``cells`` the grid's ``(cell key, content digest)`` pairs in row
    order. Returns the submission summary: job ``id`` plus ``done``
    (already in the store), ``shared`` (leased by another live job),
    and ``claimed`` (newly ours — including claims *stolen* from
    expired leases) tallies. Idempotent — resubmitting refreshes the
    same job record and re-stamps its leases. ``ttl`` overrides
    :func:`lease_ttl` (tests).
    """
    job_id = job_id_for(grid)
    ttl = lease_ttl() if ttl is None else ttl
    jobs_dir(store).mkdir(parents=True, exist_ok=True)
    pending_dir(store).mkdir(parents=True, exist_ok=True)
    done = shared = claimed = 0
    for key, digest in cells:
        if store.contains(digest):
            done += 1
            continue
        owner = _marker_owner(store, digest)
        if owner is not None and owner != job_id:
            shared += 1
            continue
        _stamp_claim(store, job_id, digest, ttl)
        claimed += 1
    record = {"schema": JOB_SCHEMA, "id": job_id, "grid": grid,
              "cells": [{"key": key, "digest": digest}
                        for key, digest in cells]}
    atomic_write_text(jobs_dir(store) / f"{job_id}.json",
                      json.dumps(record, sort_keys=True, indent=1) + "\n")
    return {"id": job_id, "cells": len(cells), "done": done,
            "shared": shared, "claimed": claimed}


def load_job(store: ResultStore, job_id: str) -> Dict[str, Any]:
    """Read one job record; unknown or corrupt records raise
    :class:`~repro.errors.ConfigError` (a typo'd id must not silently
    become an empty job)."""
    path = jobs_dir(store) / f"{job_id}.json"
    try:
        record = json.loads(read_text(path))
    except OSError:
        raise ConfigError(
            f"unknown job {job_id!r}: no record at {path} "
            "(see `repro jobs status` for known jobs)") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"job record {path} is corrupt: {exc}") from None
    if (not isinstance(record, dict)
            or record.get("schema") != JOB_SCHEMA
            or "grid" not in record or "cells" not in record):
        raise ConfigError(
            f"job record {path} has unexpected schema "
            f"{record.get('schema') if isinstance(record, dict) else None!r}")
    return record


def list_jobs(store: ResultStore) -> List[Dict[str, Any]]:
    """Every readable job record under the store, sorted by id."""
    root = jobs_dir(store)
    records = []
    if not root.is_dir():
        return records
    for path in sorted(root.glob("*.json")):
        try:
            records.append(load_job(store, path.stem))
        except ConfigError:
            continue
    return records


def job_status(store: ResultStore, record: Dict[str, Any]
               ) -> Dict[str, int]:
    """Live tallies for one job: done / in-flight / pending / stuck.

    Recomputed against the store on every call — ``done`` counts cells
    whose digest has a result entry, ``inflight`` cells leased by a
    *different* live job, ``pending`` the rest (ours to run).
    ``stuck`` counts finished cells whose pending marker still lingers
    — the signature of a failed :func:`release_claims` unlink (e.g. a
    root gone read-only), which used to be silently invisible.
    """
    job_id = record["id"]
    done = inflight = pending = stuck = 0
    for cell in record["cells"]:
        digest = cell["digest"]
        if store.contains(digest):
            done += 1
            if _marker_path(store, digest).exists():
                stuck += 1
            continue
        owner = _marker_owner(store, digest)
        if owner is not None and owner != job_id:
            inflight += 1
        else:
            pending += 1
    return {"total": len(record["cells"]), "done": done,
            "inflight": inflight, "pending": pending, "stuck": stuck}


def renew_leases(store: ResultStore, record: Dict[str, Any],
                 ttl: Optional[float] = None) -> int:
    """Re-stamp this job's live claims with a fresh owner + deadline.

    Called by ``jobs run`` at startup (the runner may be a different
    process — even host — than the submitter) and periodically from
    :class:`LeaseRenewer` while cells execute. Only markers this job
    owns and that still lack a store entry are renewed; returns the
    number re-stamped. Failures are silent — a renewal that cannot be
    written just lets the lease age toward expiry, which is the
    degradation the lease protocol is designed to absorb.
    """
    job_id = record["id"]
    ttl = lease_ttl() if ttl is None else ttl
    renewed = 0
    for cell in record["cells"]:
        digest = cell["digest"]
        if store.contains(digest):
            continue
        payload = _marker_payload(store, digest)
        if payload is None or payload.get("job") != job_id:
            continue
        try:
            _stamp_claim(store, job_id, digest, ttl)
        except OSError:
            continue
        renewed += 1
    return renewed


class LeaseRenewer:
    """Background lease heartbeat for one running job.

    A daemon thread that calls :func:`renew_leases` every ``ttl / 3``
    seconds — the same duty cycle the watchdog heartbeat uses, so a
    live owner always renews at least twice before its lease can
    lapse. Use as a context manager around the ``run_sweep`` call::

        with LeaseRenewer(store, record):
            run_sweep(...)

    Stops (and joins) on exit; exceptions inside the renewal loop are
    swallowed — lease renewal is best-effort by design.
    """

    def __init__(self, store: ResultStore, record: Dict[str, Any],
                 ttl: Optional[float] = None):
        self.store = store
        self.record = record
        self.ttl = lease_ttl() if ttl is None else ttl
        self.interval = self.ttl / 3.0
        self.renewals = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _loop(self) -> None:
        """Renew until stopped; never let an error kill the runner."""
        while not self._stop.wait(self.interval):
            try:
                self.renewals += renew_leases(self.store, self.record,
                                              self.ttl)
            except Exception:
                continue

    def __enter__(self) -> "LeaseRenewer":
        """Stamp leases now, then start the renewal thread."""
        renew_leases(self.store, self.record, self.ttl)
        self._thread = threading.Thread(target=self._loop,
                                        name="lease-renewer",
                                        daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Stop the renewal thread (joined with a short timeout)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)


def release_claims(store: ResultStore,
                   record: Dict[str, Any]) -> Tuple[int, int]:
    """Drop this job's pending markers for digests now in the store.

    Called after a ``run`` so finished cells stop reading as in-flight
    to overlapping jobs. Returns ``(released, failed)`` — ``failed``
    counts markers that should have been removed but could not be
    (unlink error, e.g. the shared root went read-only). A nonzero
    ``failed`` is surfaced by ``jobs status`` as ``stuck`` cells
    instead of being silently swallowed.
    """
    released = failed = 0
    job_id = record["id"]
    for cell in record["cells"]:
        digest = cell["digest"]
        if not store.contains(digest):
            continue
        marker = _marker_path(store, digest)
        payload = _marker_payload(store, digest)
        if payload is None or payload.get("job") != job_id:
            continue
        try:
            marker.unlink()
            released += 1
        except OSError:
            failed += 1
    return released, failed
