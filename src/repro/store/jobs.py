"""Async job journal over the content-addressed result store.

The sweep-as-a-service front end: a **job** is a submitted design-space
grid, journaled under the store root so it survives the submitting
process. The lifecycle is deliberately simple and daemon-free —
each step is one CLI invocation (``repro jobs submit/status/run/
result``), so the "service" is the filesystem plus determinism:

* **submit** dedupes the grid against the store (cells whose digest is
  already present need no work), claims the remaining digests with
  advisory *pending markers*, and journals the job. Submission is
  idempotent and content-addressed: the job id is a digest of the grid
  payload, so resubmitting the same grid lands on the same job — and
  two *overlapping* grids share in-flight cells through the markers
  (the second submitter sees the first's claim and counts the cell as
  in flight instead of claiming it again).
* **run** executes one job's missing cells through
  :func:`repro.sim.sweep.run_sweep` with the store attached — every
  completed cell lands in the store (visible to every other job
  immediately), and claims for finished digests are released.
* **status** recomputes each job's done / in-flight / pending tallies
  live against the store — there is no state to go stale.
* **result** composes the job's CSV purely from store entries
  (byte-identical to a cold ``sweep`` run of the same grid) once every
  cell is present.

Pending markers are *advisory*: they carry dedupe information between
cooperating submitters, never correctness. A crashed runner leaves its
markers behind, but a later ``run`` of any overlapping job simply
simulates the cell anyway (store writes are idempotent) and releases
the claim on completion. Markers whose owning job record no longer
exists are treated as unclaimed.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..ioutil import atomic_write_text
from ..stateutil import canonical_json
from .resultstore import ResultStore

#: Job-record schema tag.
JOB_SCHEMA = "repro-job-1"


def jobs_dir(store: ResultStore) -> Path:
    """The job-record directory under the store root."""
    return store.root / "jobs"


def pending_dir(store: ResultStore) -> Path:
    """The advisory in-flight-claim directory under the store root."""
    return store.root / "pending"


def job_id_for(grid: Dict[str, Any]) -> str:
    """Deterministic job id: short digest of the canonical grid payload.

    Content-addressed like the cells themselves, so submitting an
    identical grid twice is the *same* job — the second submit is a
    no-op refresh, not a duplicate.
    """
    return hashlib.sha256(
        canonical_json(grid).encode("utf-8")).hexdigest()[:12]


def _marker_path(store: ResultStore, digest: str) -> Path:
    return pending_dir(store) / f"{digest}.json"


def _marker_owner(store: ResultStore, digest: str) -> Optional[str]:
    """The job id holding ``digest``'s claim, or ``None``.

    A marker whose owning job record has been deleted is stale and
    reads as unclaimed.
    """
    try:
        payload = json.loads(_marker_path(store, digest).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    owner = payload.get("job") if isinstance(payload, dict) else None
    if not owner:
        return None
    if not (jobs_dir(store) / f"{owner}.json").exists():
        return None
    return str(owner)


def submit_job(store: ResultStore, grid: Dict[str, Any],
               cells: Sequence[Tuple[Dict[str, Any], str]]
               ) -> Dict[str, Any]:
    """Journal a grid as a job; dedupe and claim its missing cells.

    ``grid`` is the JSON-safe grid description (the CLI's sweep flags),
    ``cells`` the grid's ``(cell key, content digest)`` pairs in row
    order. Returns the submission summary: job ``id`` plus ``done``
    (already in the store), ``shared`` (claimed by another live job),
    and ``claimed`` (newly ours) tallies. Idempotent — resubmitting
    refreshes the same job record.
    """
    job_id = job_id_for(grid)
    jobs_dir(store).mkdir(parents=True, exist_ok=True)
    pending_dir(store).mkdir(parents=True, exist_ok=True)
    done = shared = claimed = 0
    for key, digest in cells:
        if store.contains(digest):
            done += 1
            continue
        owner = _marker_owner(store, digest)
        if owner is not None and owner != job_id:
            shared += 1
            continue
        atomic_write_text(
            _marker_path(store, digest),
            canonical_json({"schema": JOB_SCHEMA, "job": job_id,
                            "digest": digest}) + "\n",
            fsync=False)
        claimed += 1
    record = {"schema": JOB_SCHEMA, "id": job_id, "grid": grid,
              "cells": [{"key": key, "digest": digest}
                        for key, digest in cells]}
    atomic_write_text(jobs_dir(store) / f"{job_id}.json",
                      json.dumps(record, sort_keys=True, indent=1) + "\n")
    return {"id": job_id, "cells": len(cells), "done": done,
            "shared": shared, "claimed": claimed}


def load_job(store: ResultStore, job_id: str) -> Dict[str, Any]:
    """Read one job record; unknown or corrupt records raise
    :class:`~repro.errors.ConfigError` (a typo'd id must not silently
    become an empty job)."""
    path = jobs_dir(store) / f"{job_id}.json"
    try:
        record = json.loads(path.read_text())
    except OSError:
        raise ConfigError(
            f"unknown job {job_id!r}: no record at {path} "
            "(see `repro jobs status` for known jobs)") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"job record {path} is corrupt: {exc}") from None
    if (not isinstance(record, dict)
            or record.get("schema") != JOB_SCHEMA
            or "grid" not in record or "cells" not in record):
        raise ConfigError(
            f"job record {path} has unexpected schema "
            f"{record.get('schema') if isinstance(record, dict) else None!r}")
    return record


def list_jobs(store: ResultStore) -> List[Dict[str, Any]]:
    """Every readable job record under the store, sorted by id."""
    root = jobs_dir(store)
    records = []
    if not root.is_dir():
        return records
    for path in sorted(root.glob("*.json")):
        try:
            records.append(load_job(store, path.stem))
        except ConfigError:
            continue
    return records


def job_status(store: ResultStore, record: Dict[str, Any]
               ) -> Dict[str, int]:
    """Live tallies for one job: done / in-flight elsewhere / pending.

    Recomputed against the store on every call — ``done`` counts cells
    whose digest has a result entry, ``inflight`` cells claimed by a
    *different* live job, ``pending`` the rest (ours to run).
    """
    job_id = record["id"]
    done = inflight = pending = 0
    for cell in record["cells"]:
        digest = cell["digest"]
        if store.contains(digest):
            done += 1
            continue
        owner = _marker_owner(store, digest)
        if owner is not None and owner != job_id:
            inflight += 1
        else:
            pending += 1
    return {"total": len(record["cells"]), "done": done,
            "inflight": inflight, "pending": pending}


def release_claims(store: ResultStore, record: Dict[str, Any]) -> int:
    """Drop this job's pending markers for digests now in the store.

    Called after a ``run`` so finished cells stop reading as in-flight
    to overlapping jobs. Returns the number of markers released.
    """
    released = 0
    job_id = record["id"]
    for cell in record["cells"]:
        digest = cell["digest"]
        if not store.contains(digest):
            continue
        marker = _marker_path(store, digest)
        try:
            payload = json.loads(marker.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict) and payload.get("job") == job_id:
            try:
                marker.unlink()
                released += 1
            except OSError:
                pass
    return released
