"""Cache-hierarchy energy accounting (Figs. 7, 14, 15, 17, 18).

Total cache-hierarchy energy = dynamic energy (per-access, per level,
including wasted SIPT extra accesses) + static energy (per-level leakage
power integrated over the simulated runtime). Level parameters follow
Table II:

* L1: from the CACTI model (high-performance transistors, parallel
  tag+data across all ways).
* L2 (OOO only): 0.13 nJ/access, 102 mW static.
* LLC: 0.29 nJ/access and 532 mW (1 MiB, in-order system) or 0.35 nJ and
  578 mW (2 MiB, OOO system).

The SIPT predictors add ~0.34% of an L1 access read energy per prediction
and negligible leakage (Section V); we include both for completeness.
Way prediction scales L1 *data-array* dynamic energy by the predictor's
measured energy factor (Section VII-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

CLOCK_HZ = 3.0e9


@dataclass
class LevelEnergyParams:
    """Per-access dynamic energy (nJ) and leakage (mW) for one level."""

    dynamic_nj: float
    static_mw: float


@dataclass
class EnergyBreakdown:
    """Joules by level and kind; all fields in joules."""

    l1_dynamic: float = 0.0
    l1_static: float = 0.0
    l2_dynamic: float = 0.0
    l2_static: float = 0.0
    llc_dynamic: float = 0.0
    llc_static: float = 0.0
    predictor_dynamic: float = 0.0

    @property
    def dynamic(self) -> float:
        """Dynamic (per-access) energy across caches and predictors, J."""
        return (self.l1_dynamic + self.l2_dynamic + self.llc_dynamic
                + self.predictor_dynamic)

    @property
    def static(self) -> float:
        """Static (leakage) energy across the cache hierarchy, J."""
        return self.l1_static + self.l2_static + self.llc_static

    @property
    def total(self) -> float:
        """Dynamic plus static energy, J (the energy_j CSV column)."""
        return self.dynamic + self.static


class EnergyModel:
    """Accumulates cache-hierarchy energy for one simulation.

    The caller reports raw event counts (L1 accesses including extra
    accesses, L2/LLC accesses, predictor queries) and the final cycle
    count; :meth:`breakdown` integrates statics over the runtime.
    """

    PREDICTOR_DYNAMIC_FRACTION = 0.0034  # of one L1 access (Section V)

    def __init__(self, l1: LevelEnergyParams,
                 l2: Optional[LevelEnergyParams],
                 llc: LevelEnergyParams,
                 clock_hz: float = CLOCK_HZ):
        self.l1 = l1
        self.l2 = l2
        self.llc = llc
        self.clock_hz = clock_hz

    def breakdown(self, cycles: int,
                  l1_accesses: int,
                  l2_accesses: int,
                  llc_accesses: int,
                  predictor_queries: int = 0,
                  l1_data_energy_factor: float = 1.0) -> EnergyBreakdown:
        """Compute the energy breakdown for one finished simulation.

        ``l1_accesses`` must already include SIPT extra accesses.
        ``l1_data_energy_factor`` scales the L1 dynamic energy for way
        prediction (< 1 when most accesses read a single way).
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        seconds = cycles / self.clock_hz
        nj = 1e-9
        mw = 1e-3
        result = EnergyBreakdown()
        result.l1_dynamic = (l1_accesses * self.l1.dynamic_nj
                             * l1_data_energy_factor * nj)
        result.l1_static = self.l1.static_mw * mw * seconds
        if self.l2 is not None:
            result.l2_dynamic = l2_accesses * self.l2.dynamic_nj * nj
            result.l2_static = self.l2.static_mw * mw * seconds
        result.llc_dynamic = llc_accesses * self.llc.dynamic_nj * nj
        result.llc_static = self.llc.static_mw * mw * seconds
        result.predictor_dynamic = (predictor_queries
                                    * self.l1.dynamic_nj
                                    * self.PREDICTOR_DYNAMIC_FRACTION * nj)
        return result


#: Table II fixed parameters for the levels below L1.
OOO_L2_PARAMS = LevelEnergyParams(dynamic_nj=0.13, static_mw=102.0)
OOO_LLC_PARAMS = LevelEnergyParams(dynamic_nj=0.35, static_mw=578.0)
INORDER_LLC_PARAMS = LevelEnergyParams(dynamic_nj=0.29, static_mw=532.0)
