"""A compact DDR3-style DRAM timing model (substitute for DRAMSim2).

The paper uses DRAMSim2 behind a 3-level (OOO) or 2-level (in-order)
hierarchy; what matters for L1 studies is a credible miss-penalty tail.
We model the dominant DDR3 timing effects:

* channel/bank address interleaving (4 channels x 8 banks, Table II),
* per-bank open rows: row hits are fast (CAS), row misses pay
  precharge + activate + CAS,
* a small queueing penalty when a bank is hammered back-to-back.

Latencies are expressed in CPU cycles at 3 GHz. DDR3-1600-ish timing:
tCAS ~ 13.75 ns, tRCD ~ 13.75 ns, tRP ~ 13.75 ns -> ~41 cycles CAS-only,
~124 cycles for a full precharge-activate-read at 3 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DramStats:
    """Row-buffer behaviour counters."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0

    @property
    def row_hit_rate(self) -> float:
        """Row-buffer hits over all DRAM accesses."""
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class DramModel:
    """Open-page DDR3 model with per-bank row tracking.

    Parameters mirror Table II: 4 channels, 8 banks per channel, 16 GiB.
    ``row_bytes`` is the row-buffer size (8 KiB typical).
    """

    #: Dotted metrics namespace for ``repro.obs`` registration.
    metrics_namespace = "dram"

    def __init__(self, n_channels: int = 4, n_banks: int = 8,
                 row_bytes: int = 8192,
                 cas_cycles: int = 41, rcd_cycles: int = 41,
                 rp_cycles: int = 42, queue_cycles: int = 12):
        if n_channels <= 0 or n_banks <= 0:
            raise ValueError("channels and banks must be positive")
        self.n_channels = n_channels
        self.n_banks = n_banks
        self.row_bytes = row_bytes
        self.cas_cycles = cas_cycles
        self.rcd_cycles = rcd_cycles
        self.rp_cycles = rp_cycles
        self.queue_cycles = queue_cycles
        self.stats = DramStats()
        # open_rows[channel][bank] -> row id or -1
        self._open_rows = [[-1] * n_banks for _ in range(n_channels)]
        self._last_bank = (-1, -1)

    def state_dict(self) -> dict:
        """JSON-safe snapshot: stats, open rows, last bank touched."""
        from ..stateutil import stats_state
        return {"stats": stats_state(self.stats),
                "open_rows": [list(rows) for rows in self._open_rows],
                "last_bank": list(self._last_bank)}

    def load_state_dict(self, state: dict) -> None:
        """Restore row-buffer state into a same-geometry model."""
        from ..stateutil import load_stats
        load_stats(self.stats, state["stats"])
        for rows, saved in zip(self._open_rows, state["open_rows"]):
            rows[:] = saved
        self._last_bank = tuple(state["last_bank"])

    def _map(self, pa: int) -> tuple:
        """Address mapping: row | bank | channel | row-offset."""
        block = pa // self.row_bytes
        channel = block % self.n_channels
        block //= self.n_channels
        bank = block % self.n_banks
        row = block // self.n_banks
        return channel, bank, row

    def _access(self, pa: int) -> int:
        channel, bank, row = self._map(pa)
        open_row = self._open_rows[channel][bank]
        latency = self.cas_cycles
        if open_row == row:
            self.stats.row_hits += 1
        else:
            self.stats.row_misses += 1
            latency += self.rcd_cycles
            if open_row != -1:
                latency += self.rp_cycles
            self._open_rows[channel][bank] = row
        if (channel, bank) == self._last_bank:
            latency += self.queue_cycles
        self._last_bank = (channel, bank)
        return latency

    def read(self, pa: int) -> int:
        """Read ``pa``; returns latency in CPU cycles."""
        self.stats.reads += 1
        return self._access(pa)

    def write(self, pa: int) -> int:
        """Write ``pa`` (e.g. an LLC write-back); returns occupancy cycles."""
        self.stats.writes += 1
        return self._access(pa)
