"""Speculative-scheduling replay model (Section VII-C).

Modern OOO schedulers speculatively wake dependents of a load assuming
its common-case latency; when the load turns out slower (a cache miss,
a way misprediction, or — new with SIPT — a slow access after a wrong
index speculation), the speculatively issued dependents must *replay*.

Section VII-C argues SIPT composes well with existing replay schemes:

* its misprediction rate is a small fraction of the cache-miss rate the
  scheduler already tolerates, and
* the bypass predictor is a built-in *confidence estimator*: loads
  predicted to have unchanged bits almost never misspeculate, so the
  expensive selective-replay resources can be reserved for the few
  low-confidence loads while high-confidence loads fall back to a
  cheaper flush-style replay.

This module quantifies that argument. It post-processes a simulation's
outcome counts into replay events and costs under three policies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.outcomes import OutcomeCounts


class ReplayPolicy(enum.Enum):
    """How the scheduler recovers from a latency misprediction."""

    SELECTIVE = "selective"   # replay only the dependent chain
    FLUSH = "flush"           # squash and refetch from the load
    HYBRID = "hybrid"         # selective for low-confidence loads only


@dataclass(frozen=True)
class ReplayCosts:
    """Recovery penalties in cycles per event.

    Defaults follow the rough costs in Kim & Lipasti's analysis of
    replay schemes: selective replay re-issues only dependents (a few
    cycles); a flush pays a pipeline-refill-like penalty.
    """

    selective_cycles: float = 3.0
    flush_cycles: float = 12.0


@dataclass
class ReplayReport:
    """Replay accounting for one simulation under one policy."""

    policy: ReplayPolicy
    replay_events: int
    replay_cycles: float
    added_cpi: float
    #: Fraction of loads that needed the selective-replay hardware
    #: (0 for pure FLUSH; all events for pure SELECTIVE).
    selective_fraction: float


class SchedulerReplayModel:
    """Convert SIPT outcome counts into scheduler replay costs.

    A replay event occurs whenever the scheduler woke dependents for a
    fast access that turned out slow — i.e., every EXTRA_ACCESS outcome
    (the access was issued speculatively and failed). Correct bypasses
    and opportunity losses schedule conservatively and never replay.
    """

    def __init__(self, costs: ReplayCosts = ReplayCosts()):
        self.costs = costs

    def replay_events(self, outcomes: OutcomeCounts) -> int:
        """Number of scheduler replays SIPT causes."""
        return outcomes.extra_access

    def confident_fraction(self, outcomes: OutcomeCounts) -> float:
        """Loads whose speculation the bypass predictor endorsed.

        These are the high-confidence loads (correct speculations plus
        the extra accesses that slipped past the predictor); the rest
        went through the IDB or bypassed, i.e. were flagged low
        confidence. The paper: "in many applications nearly all loads
        do not require selective replay".
        """
        total = outcomes.total
        if total == 0:
            return 1.0
        endorsed_failures = (outcomes.extra_access
                             - outcomes.extra_access_after_idb)
        confident = outcomes.correct_speculation + endorsed_failures
        return confident / total

    def report(self, outcomes: OutcomeCounts, instructions: int,
               cycles: float, policy: ReplayPolicy) -> ReplayReport:
        """Replay cost report for one finished simulation."""
        if instructions <= 0 or cycles <= 0:
            raise ValueError("instructions and cycles must be positive")
        events = self.replay_events(outcomes)
        costs = self.costs
        if policy is ReplayPolicy.SELECTIVE:
            cycles_added = events * costs.selective_cycles
            selective_fraction = 1.0 if events else 0.0
        elif policy is ReplayPolicy.FLUSH:
            cycles_added = events * costs.flush_cycles
            selective_fraction = 0.0
        else:
            # HYBRID: high-confidence loads use flush (their events are
            # rare), low-confidence loads get selective replay. The
            # split is exact: an EXTRA_ACCESS from a failed IDB value
            # prediction is by definition a low-confidence event.
            low_events = outcomes.extra_access_after_idb
            high_events = events - low_events
            cycles_added = (high_events * costs.flush_cycles
                            + low_events * costs.selective_cycles)
            selective_fraction = 1.0 - self.confident_fraction(outcomes)
        return ReplayReport(
            policy=policy,
            replay_events=events,
            replay_cycles=cycles_added,
            added_cpi=cycles_added / instructions,
            selective_fraction=selective_fraction,
        )
