"""Timing and energy models: CACTI substitute, cores, DRAM, energy."""

from .cacti import CLOCK_GHZ, CactiModel, CactiResult, TABLE2_ANCHORS
from .dram import DramModel, DramStats
from .energy import (
    EnergyBreakdown,
    EnergyModel,
    INORDER_LLC_PARAMS,
    LevelEnergyParams,
    OOO_L2_PARAMS,
    OOO_LLC_PARAMS,
)
from .detailed import DetailedOooCore
from .inorder import CoreStats, InOrderCore
from .ooo import OooCore
from .scheduler import (
    ReplayCosts,
    ReplayPolicy,
    ReplayReport,
    SchedulerReplayModel,
)

__all__ = [
    "CLOCK_GHZ",
    "CactiModel",
    "CactiResult",
    "CoreStats",
    "DetailedOooCore",
    "DramModel",
    "DramStats",
    "EnergyBreakdown",
    "EnergyModel",
    "INORDER_LLC_PARAMS",
    "InOrderCore",
    "LevelEnergyParams",
    "OOO_L2_PARAMS",
    "OOO_LLC_PARAMS",
    "OooCore",
    "ReplayCosts",
    "ReplayPolicy",
    "ReplayReport",
    "SchedulerReplayModel",
    "TABLE2_ANCHORS",
]
