"""Dependence-graph OOO core model ("detailed" core).

Where :class:`~repro.timing.ooo.OooCore` uses calibrated stall
accounting, this model computes per-instruction issue and retire times
from first principles, the way limit studies of OOO pipelines do:

* **fetch/ROB limit**: instruction ``i`` cannot enter the window until
  the instruction ``ROB`` slots older has retired;
* **issue width**: at most ``width`` instructions issue per cycle;
* **data dependence**: the consumer of a load (``dep_dist``
  instructions later) cannot issue before the load completes;
* **in-order retire** with ``width`` retire bandwidth.

The recurrences are O(1) per instruction with ring buffers, so the
detailed core is only ~2x slower than the analytic one while modelling
ROB stalls, dependence chains, and MLP *emergently* (independent loads
overlap simply because nothing serializes them).

Select it with ``SystemConfig(core="ooo-detailed")``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

from .inorder import CoreStats


class DetailedOooCore:
    """Event-time OOO model with ROB, width, and dependence limits.

    Implements the same interface as the analytic cores
    (:meth:`retire_instructions`, :meth:`memory_access`,
    :meth:`finish`), so the driver can swap it in transparently.
    """

    #: Dotted metrics namespace for ``repro.obs`` registration.
    metrics_namespace = "core"

    #: Pipeline front-end depth: a load's value is available to its
    #: consumer this many cycles after issue even for a 0-latency op.
    FORWARD_LATENCY = 1

    def __init__(self, width: int = 6, rob_size: int = 192):
        if width < 1 or rob_size < width:
            raise ValueError("invalid width/ROB configuration")
        self.width = width
        self.rob_size = rob_size
        self.stats = CoreStats()
        self._index = 0
        self._issue_times: Deque[float] = deque(maxlen=width)
        self._retire_times: Deque[float] = deque(maxlen=rob_size)
        self._wakeups: Dict[int, float] = {}
        self._last_retire = 0.0
        self._final_time = 0.0

    # ------------------------------------------------------------------
    def _issue_one(self, exec_latency: float,
                   completes_off_path: bool = False) -> float:
        """Advance one instruction; returns its completion time."""
        i = self._index
        rob_ok = (self._retire_times[0]
                  if len(self._retire_times) == self.rob_size else 0.0)
        width_ok = (self._issue_times[0] + 1.0
                    if len(self._issue_times) == self.width else 0.0)
        dep_ok = self._wakeups.pop(i, 0.0)
        issue = max(rob_ok, width_ok, dep_ok)
        complete = issue + exec_latency
        # In-order retire at up to `width` per cycle.
        retire = max(issue if completes_off_path else complete,
                     self._last_retire + 1.0 / self.width)
        self._issue_times.append(issue)
        self._retire_times.append(retire)
        self._last_retire = retire
        self._final_time = max(self._final_time, retire)
        self._index += 1
        self.stats.instructions += 1
        # Keep the cycle count live so interval sampling (repro.obs)
        # sees per-window progress; finish() still applies the
        # width-limit clamp to the final figure.
        self.stats.cycles = self._final_time
        return complete

    # ------------------------------------------------------------------
    def retire_instructions(self, count: int) -> None:
        """Account for ``count`` single-cycle ALU instructions."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for _ in range(count):
            self._issue_one(1.0)

    def memory_access(self, latency: int, is_write: bool,
                      dep_dist: int) -> None:
        """One load/store with total memory latency ``latency``.

        Loads wake their first consumer ``dep_dist`` instructions later;
        stores complete off the critical path through the store buffer.
        """
        if is_write:
            self._issue_one(1.0, completes_off_path=True)
            return
        complete = self._issue_one(max(1.0, float(latency)))
        consumer = self._index + max(0, int(dep_dist))
        previous = self._wakeups.get(consumer, 0.0)
        if complete > previous:
            self._wakeups[consumer] = complete

    def finish(self) -> CoreStats:
        """Final stats; cycles is the retire time of the last instruction."""
        self.stats.cycles = max(self._final_time,
                                self.stats.instructions / self.width)
        return self.stats

    def state_dict(self) -> dict:
        """JSON-safe snapshot of the full pipeline recurrence state.

        Pending wakeups are stored as sorted ``[index, time]`` pairs —
        JSON objects cannot have integer keys, and the sort keeps the
        serialization deterministic.
        """
        from ..stateutil import stats_state
        return {"stats": stats_state(self.stats),
                "index": self._index,
                "issue_times": list(self._issue_times),
                "retire_times": list(self._retire_times),
                "wakeups": [[i, t] for i, t
                            in sorted(self._wakeups.items())],
                "last_retire": self._last_retire,
                "final_time": self._final_time}

    def load_state_dict(self, state: dict) -> None:
        """Restore the pipeline mid-flight (same width/ROB sizing)."""
        from ..stateutil import load_stats
        load_stats(self.stats, state["stats"])
        self._index = state["index"]
        self._issue_times = deque(state["issue_times"], maxlen=self.width)
        self._retire_times = deque(state["retire_times"],
                                   maxlen=self.rob_size)
        self._wakeups = {int(i): t for i, t in state["wakeups"]}
        self._last_retire = state["last_retire"]
        self._final_time = state["final_time"]
