"""In-order core timing model (2-wide, Table II).

A trace-driven stall-accounting model. The core retires ``width``
instructions per cycle in the absence of stalls; every memory access may
add stall cycles on top:

* Loads stall-on-use: a load with total latency ``lat`` (L1 latency plus
  any miss-path latency) and ``dep_dist`` independent instructions before
  its first consumer exposes ``max(0, lat - 1 - dep_dist / width)``
  cycles. An in-order pipeline cannot reorder past the consumer, so most
  of the latency is visible — which is why the paper finds in-order cores
  prefer larger (lower-miss-rate) L1s over lower-latency ones.
* Stores drain through a small store buffer and only stall when the
  buffer would back up, modelled as a fraction of the miss path.

Instruction counts come from the trace's per-access ``inst_gap``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CoreStats:
    """Cycle/instruction accounting for one simulated core."""

    instructions: int = 0
    cycles: float = 0.0
    load_stall_cycles: float = 0.0
    store_stall_cycles: float = 0.0

    @property
    def ipc(self) -> float:
        """Instructions per cycle (0.0 before any cycle elapsed)."""
        return self.instructions / self.cycles if self.cycles else 0.0


class InOrderCore:
    """2-wide in-order stall accounting (Table II, right column)."""

    #: Dotted metrics namespace for ``repro.obs`` registration.
    metrics_namespace = "core"

    STORE_STALL_FRACTION = 0.3  # stores expose a fraction of miss latency
    #: Fraction of the nominally exposed load latency that actually
    #: stalls retire. Short (L1-hit-class) latencies partially overlap
    #: with already-fetched independent work; long miss latencies are
    #: nearly fully exposed because an in-order window has nothing left
    #: to issue.
    HIT_EXPOSURE = 0.4
    MISS_EXPOSURE = 1.0

    def __init__(self, width: int = 2):
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = width
        self.stats = CoreStats()

    def retire_instructions(self, count: int) -> None:
        """Account for non-memory instructions (from trace inst_gap)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.stats.instructions += count
        self.stats.cycles += count / self.width

    def memory_access(self, latency: int, is_write: bool,
                      dep_dist: int) -> None:
        """Account for one load/store with total latency ``latency``."""
        self.stats.instructions += 1
        self.stats.cycles += 1.0 / self.width
        if is_write:
            # Store buffer hides latency; long miss paths back it up.
            exposed = max(0.0, (latency - 4) * self.STORE_STALL_FRACTION)
            self.stats.store_stall_cycles += exposed
            self.stats.cycles += exposed
            return
        overlap = dep_dist / self.width
        factor = self.HIT_EXPOSURE if latency <= 8 else self.MISS_EXPOSURE
        exposed = max(0.0, latency - 1.0 - overlap) * factor
        self.stats.load_stall_cycles += exposed
        self.stats.cycles += exposed

    def finish(self) -> CoreStats:
        """Return the final stats (no pipeline-drain modelling needed)."""
        return self.stats

    def state_dict(self) -> dict:
        """JSON-safe snapshot (the model's only state is its stats)."""
        from ..stateutil import stats_state
        return {"stats": stats_state(self.stats)}

    def load_state_dict(self, state: dict) -> None:
        """Restore cycle/instruction accounting."""
        from ..stateutil import load_stats
        load_stats(self.stats, state["stats"])
