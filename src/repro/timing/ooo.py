"""Out-of-order core timing model (6-wide, 192-entry ROB, Table II).

A trace-driven limit model capturing the two first-order OOO effects the
paper's results hinge on:

* **L1 hit latency sits on dependent-load critical paths.** An OOO core
  hides most of a short L1 latency, but the fraction of loads feeding
  dependent work soon (``dep_frac``-weighted, via per-access dep_dist)
  exposes ``latency - PIPELINE_HIDE`` cycles. This is why the 2-cycle
  32 KiB/2-way configuration wins on OOO cores (Fig. 2).
* **Misses overlap through MLP, bounded by the ROB.** Miss latency is
  divided by the application's memory-level parallelism; latency beyond
  what the ROB can cover while retiring at full width is always exposed.

The model is deliberately analytic per access (O(1)), so full-suite
sweeps stay fast while preserving the paper's qualitative ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

from .inorder import CoreStats


class OooCore:
    """6-wide OOO stall accounting with MLP-based miss overlap."""

    #: Dotted metrics namespace for ``repro.obs`` registration.
    metrics_namespace = "core"

    #: Cycles of load-use latency the scheduler hides for free
    #: (speculative wakeup covers back-to-back dependent issue).
    PIPELINE_HIDE = 2.0
    #: Latency at or below which an access is treated as L1/L2-class
    #: (dependence-limited) rather than LLC/DRAM-class (MLP-limited).
    NEAR_LATENCY = 16
    #: Minimum exposure of L2-class miss latency (scheduler replay of
    #: the mis-scheduled dependence cone).
    L2_CLASS_EXPOSURE = 0.45

    def __init__(self, width: int = 6, rob_size: int = 192,
                 mlp: float = 4.0):
        if width < 1 or rob_size < width:
            raise ValueError("invalid width/ROB configuration")
        if mlp < 1.0:
            raise ValueError("mlp must be >= 1")
        self.width = width
        self.rob_size = rob_size
        self.mlp = mlp
        self.stats = CoreStats()
        # Cycles of miss latency the ROB can absorb while retiring.
        self._rob_cover = rob_size / width

    def retire_instructions(self, count: int) -> None:
        """Account for non-memory instructions."""
        if count < 0:
            raise ValueError("count must be non-negative")
        stats = self.stats
        stats.instructions += count
        stats.cycles += count / self.width

    def memory_access(self, latency: int, is_write: bool,
                      dep_dist: int) -> None:
        """Account for one load/store with total latency ``latency``.

        ``dep_dist`` is the instruction distance to the first consumer;
        loads with a distant consumer behave as independent.
        """
        stats = self.stats
        stats.instructions += 1
        stats.cycles += 1.0 / self.width
        if is_write:
            return  # stores retire through the store buffer, off-path
        if latency <= self.PIPELINE_HIDE:
            return
        exposed = latency - self.PIPELINE_HIDE
        if latency <= 8:
            # L1-hit-class latency sits on dependence chains; how much
            # of it retires as stall depends on how soon the consumer
            # issues.
            stall = exposed * self._dep_factor(dep_dist)
        elif latency <= self.NEAR_LATENCY:
            # L2-class misses stall harder: the scheduler has already
            # issued the dependence cone expecting a hit, and replaying
            # it exposes much of the L2 round trip.
            stall = exposed * max(self._dep_factor(dep_dist),
                                  self.L2_CLASS_EXPOSURE)
        else:
            # LLC/DRAM-class latency is MLP-limited; the ROB absorbs a
            # window of it while continuing to retire.
            per_miss = exposed / self.mlp
            absorbed = min(per_miss, self._rob_cover * 0.5)
            stall = max(per_miss - absorbed * 0.4, exposed * 0.04)
        stats.load_stall_cycles += stall
        stats.cycles += stall

    @staticmethod
    def _dep_factor(dep_dist: int) -> float:
        """Fraction of exposed latency a load's consumer actually waits."""
        if dep_dist <= 2:
            return 0.22
        if dep_dist <= 8:
            return 0.08
        return 0.02

    def finish(self) -> CoreStats:
        """Return the final stats."""
        return self.stats

    def state_dict(self) -> dict:
        """JSON-safe snapshot (the model's only state is its stats)."""
        from ..stateutil import stats_state
        return {"stats": stats_state(self.stats)}

    def load_state_dict(self, state: dict) -> None:
        """Restore cycle/instruction accounting."""
        from ..stateutil import load_stats
        load_stats(self.stats, state["stats"])
