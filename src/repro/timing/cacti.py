"""Parametric L1 latency/energy model (substitute for CACTI 6.5).

The paper uses CACTI 6.5 at 32 nm to (a) show that associativity dominates
L1 access latency (Fig. 1, Tab. I) and (b) derive per-configuration
latency, dynamic energy, and static power (Tab. II). We replace CACTI with
a small parametric model *anchored to the paper's own Table II numbers*:

========================  =======  ================  ============
configuration             latency  energy-per-access  static power
========================  =======  ================  ============
32 KiB 8-way (baseline)   4 cyc    0.38 nJ           46 mW
32 KiB 2-way              2 cyc    0.10 nJ           24 mW
32 KiB 4-way              3 cyc    0.185 nJ          30 mW
64 KiB 4-way              3 cyc    0.27 nJ           51 mW
128 KiB 4-way             4 cyc    0.29 nJ           69 mW
========================  =======  ================  ============

For geometries not anchored, latency is
``t = g(capacity) + f(assoc)`` in nanoseconds, where ``g`` grows with the
square root of capacity (bitline/wire delay) and ``f`` grows superlinearly
with associativity (parallel way readout, wider muxing) — the trend CACTI
shows and Fig. 1 plots. Ports multiply latency (additional decoders and
wordline load); banking divides the array but adds decode latency.

All latencies convert to cycles at the paper's 3 GHz clock via ceiling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

CLOCK_GHZ = 3.0
CYCLE_NS = 1.0 / CLOCK_GHZ

KiB = 1024

#: Anchor points from Table II: (capacity, ways) -> (cycles, nJ, mW).
TABLE2_ANCHORS: Dict[Tuple[int, int], Tuple[int, float, float]] = {
    (32 * KiB, 8): (4, 0.38, 46.0),
    (32 * KiB, 2): (2, 0.10, 24.0),
    (32 * KiB, 4): (3, 0.185, 30.0),
    (64 * KiB, 4): (3, 0.27, 51.0),
    (128 * KiB, 4): (4, 0.29, 69.0),
    (16 * KiB, 4): (2, 0.09, 18.0),  # paper: 16K 4-way is a 2-cycle design
}

#: Associativity latency component, ns (calibrated to the anchors).
_ASSOC_NS = {1: 0.20, 2: 0.26, 4: 0.40, 8: 0.70, 16: 1.24, 32: 2.30}


@dataclass(frozen=True)
class CactiResult:
    """Latency/energy estimate for one cache geometry."""

    capacity_bytes: int
    n_ways: int
    read_ports: int
    n_banks: int
    latency_ns: float
    latency_cycles: int
    dynamic_nj: float
    static_mw: float


class CactiModel:
    """Latency/energy estimator for parallel-tag-data L1 arrays.

    ``estimate`` covers the Tab. I sweep space: capacity 16-128 KiB,
    associativity 2-32, 1-2 read ports, 1-4 banks.
    """

    def __init__(self, clock_ghz: float = CLOCK_GHZ):
        self.clock_ghz = clock_ghz
        self.cycle_ns = 1.0 / clock_ghz

    # -- latency ------------------------------------------------------
    def _capacity_ns(self, capacity_bytes: int) -> float:
        return 0.24 * math.sqrt(capacity_bytes / (16 * KiB))

    def _assoc_ns(self, n_ways: int) -> float:
        if n_ways in _ASSOC_NS:
            return _ASSOC_NS[n_ways]
        # Geometric interpolation between the calibrated anchors.
        lo = max(w for w in _ASSOC_NS if w <= n_ways)
        hi = min(w for w in _ASSOC_NS if w >= n_ways)
        if lo == hi:
            return _ASSOC_NS[lo]
        t = (math.log2(n_ways) - math.log2(lo)) / (math.log2(hi)
                                                   - math.log2(lo))
        return _ASSOC_NS[lo] * (1 - t) + _ASSOC_NS[hi] * t

    def latency_ns(self, capacity_bytes: int, n_ways: int,
                   read_ports: int = 1, n_banks: int = 1) -> float:
        """Access time in ns for the given geometry."""
        if read_ports < 1 or n_banks < 1:
            raise ValueError("ports and banks must be >= 1")
        if n_ways < 1 or capacity_bytes < n_ways * 64:
            raise ValueError("invalid cache geometry")
        # Banking splits the data array; each bank is smaller but a bank
        # decoder is added and the critical bank sees extra routing.
        per_bank = capacity_bytes / n_banks
        base = self._capacity_ns(int(per_bank)) + self._assoc_ns(n_ways)
        base += 0.05 * math.log2(n_banks) if n_banks > 1 else 0.0
        # A second read port roughly doubles wordline/bitline load.
        base *= 1.0 + 0.55 * (read_ports - 1)
        return base

    def latency_cycles(self, capacity_bytes: int, n_ways: int,
                       read_ports: int = 1, n_banks: int = 1) -> int:
        """Access time in (ceil) cycles at the model clock."""
        key = (capacity_bytes, n_ways)
        if read_ports == 1 and n_banks == 1 and key in TABLE2_ANCHORS:
            return TABLE2_ANCHORS[key][0]
        ns = self.latency_ns(capacity_bytes, n_ways, read_ports, n_banks)
        return max(1, math.ceil(ns / self.cycle_ns - 1e-9))

    # -- energy -------------------------------------------------------
    def dynamic_nj(self, capacity_bytes: int, n_ways: int) -> float:
        """Dynamic energy per (all-ways-parallel) access, in nJ."""
        key = (capacity_bytes, n_ways)
        if key in TABLE2_ANCHORS:
            return TABLE2_ANCHORS[key][1]
        # Reading all ways in parallel scales ~linearly with ways; bigger
        # arrays pay longer bitlines per way.
        return (0.0536 * n_ways ** 0.9
                * (capacity_bytes / (32 * KiB)) ** 0.35)

    def static_mw(self, capacity_bytes: int, n_ways: int) -> float:
        """Leakage power in mW (high-performance transistors)."""
        key = (capacity_bytes, n_ways)
        if key in TABLE2_ANCHORS:
            return TABLE2_ANCHORS[key][2]
        return (18.0 * (capacity_bytes / (32 * KiB)) ** 0.8
                * (1.0 + 0.09 * n_ways))

    # -- combined -----------------------------------------------------
    def estimate(self, capacity_bytes: int, n_ways: int,
                 read_ports: int = 1, n_banks: int = 1) -> CactiResult:
        """Full estimate for one geometry."""
        ns = self.latency_ns(capacity_bytes, n_ways, read_ports, n_banks)
        return CactiResult(
            capacity_bytes=capacity_bytes,
            n_ways=n_ways,
            read_ports=read_ports,
            n_banks=n_banks,
            latency_ns=ns,
            latency_cycles=self.latency_cycles(capacity_bytes, n_ways,
                                               read_ports, n_banks),
            dynamic_nj=self.dynamic_nj(capacity_bytes, n_ways),
            static_mw=self.static_mw(capacity_bytes, n_ways),
        )

    def sweep(self, capacities=(16 * KiB, 32 * KiB, 64 * KiB, 128 * KiB),
              ways=(2, 4, 8, 16, 32),
              ports=(1, 2), banks=(1, 2, 4)):
        """The Tab. I design-space sweep; yields CactiResult objects."""
        for capacity in capacities:
            for n_ways in ways:
                if capacity // n_ways < 1024:  # degenerate ways
                    continue
                for read_ports in ports:
                    for n_banks in banks:
                        yield self.estimate(capacity, n_ways,
                                            read_ports, n_banks)
