"""Programmatic scorecard for the paper's headline claims.

``python -m repro validate`` (or :func:`run_scorecard`) runs a reduced
version of the evaluation and checks each headline claim of the paper
as a pass/fail line — a five-minute smoke check that the reproduction
still behaves like the paper after a change, without running the full
benchmark suite.

The scorecard grid (suite x app) executes through
:class:`~repro.sim.resilience.ResilientRunner`: each cell journals the
scalar metrics the claims need (IPC, total energy, fast fraction), so
an interrupted ``validate`` resumes from its journal, and a failing
cell drops its app from the claim arithmetic instead of aborting the
whole scorecard (the degradation is reported as an extra failing
check).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from typing import Dict, List, Optional

from .core.indexing import IndexingScheme, SiptVariant
from .errors import SimulationError
from .sim import (
    BASELINE_L1,
    SIPT_GEOMETRIES,
    ResilientRunner,
    TraceCache,
    harmonic_mean,
    inorder_system,
    ooo_system,
    run_app,
)
from .workloads import MemoryCondition

#: Representative subset spanning the allocation styles and behaviours.
SCORECARD_APPS = ["perlbench", "h264ref", "sjeng", "libquantum",
                  "calculix", "gromacs", "graph500", "xalancbmk_17",
                  "leela_17", "mcf"]


@dataclass
class Check:
    """One verified claim."""

    claim: str
    measured: str
    passed: bool


def _suite_cell(app: str, system_factory, cfg, condition, n: int) -> dict:
    """One scorecard cell as a picklable worker task (``jobs > 1``).

    ``system_factory`` is a module-level function (``ooo_system`` /
    ``inorder_system``) and ``cfg`` a frozen L1Config, so the partial
    pickles cleanly; traces come from the worker's shared cache.
    """
    result = run_app(app, system_factory(cfg), condition=condition,
                     n_accesses=n, cache=None)
    return {"ipc": result.ipc,
            "energy_total": result.energy.total,
            "fast_fraction": result.fast_fraction}


def _suite(label: str, system_factory, cfg, traces, n, runner,
           condition=MemoryCondition.NORMAL) -> Dict[str, dict]:
    """One scorecard suite as runner cells; returns {app: metrics}.

    Failed cells are simply absent from the returned mapping — the
    caller computes claims over the apps every suite completed. With a
    ``jobs > 1`` runner the suite's apps run concurrently in the
    process pool; the simulations are seeded, so the metrics are
    identical to a serial run.
    """
    keys = [{"grid": "scorecard", "suite": label, "app": app,
             "condition": condition.value, "accesses": n}
            for app in SCORECARD_APPS]
    if runner.jobs > 1:
        cells = [(key, partial(_suite_cell, app, system_factory, cfg,
                               condition, n))
                 for key, app in zip(keys, SCORECARD_APPS)]
        rows = runner.run_cells(cells)
        return {app: row for app, row in zip(SCORECARD_APPS, rows)
                if row.get("status") == "ok"}
    out: Dict[str, dict] = {}
    for key, app in zip(keys, SCORECARD_APPS):

        def cell(app=app, condition=condition):
            result = run_app(app, system_factory(cfg), condition=condition,
                             n_accesses=n, cache=traces)
            return {"ipc": result.ipc,
                    "energy_total": result.energy.total,
                    "fast_fraction": result.fast_fraction}

        row = runner.run_cell(key, cell)
        if row.get("status") == "ok":
            out[app] = row
    return out


def run_scorecard(n_accesses: int = 12_000,
                  traces: Optional[TraceCache] = None,
                  runner: Optional[ResilientRunner] = None) -> List[Check]:
    """Run the reduced evaluation and score the headline claims.

    Pass a journaling ``runner`` to checkpoint/resume the underlying
    (suite x app) grid. If cells fail, the affected apps are dropped
    from every claim (keeping ratios paired) and an extra failing
    check reports the degradation; if no app survives, raises
    :class:`SimulationError`.
    """
    traces = traces or TraceCache()
    runner = runner or ResilientRunner()
    checks: List[Check] = []
    sipt = SIPT_GEOMETRIES["32K_2w"]
    ideal = sipt.with_scheme(IndexingScheme.IDEAL)
    naive = replace(sipt, variant=SiptVariant.NAIVE)
    n = n_accesses

    base = _suite("base", ooo_system, BASELINE_L1, traces, n, runner)
    sipt_r = _suite("sipt", ooo_system, sipt, traces, n, runner)
    ideal_r = _suite("ideal", ooo_system, ideal, traces, n, runner)
    naive_r = _suite("naive", ooo_system, naive, traces, n, runner)

    # In-order: capacity wins (Fig. 3).
    cfg64 = SIPT_GEOMETRIES["64K_4w"].with_scheme(IndexingScheme.IDEAL)
    cfg32 = sipt.with_scheme(IndexingScheme.IDEAL)
    base_io = _suite("base-io", inorder_system, BASELINE_L1, traces, n,
                     runner)
    io64_r = _suite("io64", inorder_system, cfg64, traces, n, runner)
    io32_r = _suite("io32", inorder_system, cfg32, traces, n, runner)

    # Fragmentation degrades mildly (Fig. 18).
    frag_base = _suite("frag-base", ooo_system, BASELINE_L1, traces, n,
                       runner, condition=MemoryCondition.FRAGMENTED)
    frag = _suite("frag-sipt", ooo_system, sipt, traces, n, runner,
                  condition=MemoryCondition.FRAGMENTED)

    suites = [base, sipt_r, ideal_r, naive_r, base_io, io64_r, io32_r,
              frag_base, frag]
    apps = [a for a in SCORECARD_APPS
            if all(a in suite for suite in suites)]
    if not apps:
        raise SimulationError(
            "every scorecard cell failed; nothing to score "
            f"({runner.stats.summary()})")

    def ipc_ratio(res, ref):
        return harmonic_mean([res[a]["ipc"] / ref[a]["ipc"] for a in apps])

    speedup = ipc_ratio(sipt_r, base)
    ideal_speedup = ipc_ratio(ideal_r, base)
    naive_speedup = ipc_ratio(naive_r, base)
    energy = sum(sipt_r[a]["energy_total"] / base[a]["energy_total"]
                 for a in apps) / len(apps)

    checks.append(Check(
        "SIPT (32K/2w + IDB) speeds up the OOO core",
        f"hmean speedup {speedup:.3f}", speedup > 1.0))
    checks.append(Check(
        "SIPT approaches the ideal cache (paper: within ~2.3%)",
        f"ideal {ideal_speedup:.3f} vs SIPT {speedup:.3f}",
        (ideal_speedup - speedup) < 0.04))
    checks.append(Check(
        "combined predictor beats naive speculation",
        f"naive {naive_speedup:.3f} vs combined {speedup:.3f}",
        speedup >= naive_speedup - 1e-9))
    checks.append(Check(
        "SIPT reduces total cache-hierarchy energy (paper: -15.6%)",
        f"energy ratio {energy:.3f}", energy < 0.9))
    min_speedup = min(sipt_r[a]["ipc"] / base[a]["ipc"] for a in apps)
    checks.append(Check(
        "SIPT never materially underperforms the baseline",
        f"min speedup {min_speedup:.3f}", min_speedup > 0.99))

    io64 = ipc_ratio(io64_r, base_io)
    io32 = ipc_ratio(io32_r, base_io)
    checks.append(Check(
        "in-order core prefers 64K/4w over 32K/2w (Fig. 3)",
        f"64K {io64:.3f} vs 32K/2w {io32:.3f}", io64 > io32))

    frag_speedup = ipc_ratio(frag, frag_base)
    checks.append(Check(
        "fragmented memory degrades SIPT only mildly (Fig. 18)",
        f"fragmented speedup {frag_speedup:.3f}", frag_speedup > 0.98))

    fast = sum(sipt_r[a]["fast_fraction"] for a in apps) / len(apps)
    checks.append(Check(
        "combined predictor makes most accesses fast (Fig. 12)",
        f"mean fast fraction {fast:.3f}", fast > 0.8))

    if len(apps) < len(SCORECARD_APPS):
        dropped = sorted(set(SCORECARD_APPS) - set(apps))
        checks.append(Check(
            "scorecard grid completed without degraded cells",
            f"dropped apps {dropped} ({runner.stats.summary()})", False))
    return checks


def format_scorecard(checks: List[Check]) -> str:
    """Render the scorecard as aligned text."""
    width = max(len(c.claim) for c in checks)
    lines = []
    for check in checks:
        mark = "PASS" if check.passed else "FAIL"
        lines.append(f"[{mark}] {check.claim.ljust(width)}  "
                     f"({check.measured})")
    n_pass = sum(c.passed for c in checks)
    lines.append(f"{n_pass}/{len(checks)} headline claims reproduced")
    return "\n".join(lines)
