"""Programmatic scorecard for the paper's headline claims.

``python -m repro validate`` (or :func:`run_scorecard`) runs a reduced
version of the evaluation and checks each headline claim of the paper
as a pass/fail line — a five-minute smoke check that the reproduction
still behaves like the paper after a change, without running the full
benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from .core.indexing import IndexingScheme, SiptVariant
from .sim import (
    BASELINE_L1,
    SIPT_GEOMETRIES,
    TraceCache,
    harmonic_mean,
    inorder_system,
    ooo_system,
    run_app,
)
from .workloads import MemoryCondition

#: Representative subset spanning the allocation styles and behaviours.
SCORECARD_APPS = ["perlbench", "h264ref", "sjeng", "libquantum",
                  "calculix", "gromacs", "graph500", "xalancbmk_17",
                  "leela_17", "mcf"]


@dataclass
class Check:
    """One verified claim."""

    claim: str
    measured: str
    passed: bool


def _suite(system_factory, cfg, traces, n, condition=MemoryCondition.NORMAL):
    return {app: run_app(app, system_factory(cfg), condition=condition,
                         n_accesses=n, cache=traces)
            for app in SCORECARD_APPS}


def run_scorecard(n_accesses: int = 12_000,
                  traces: Optional[TraceCache] = None) -> List[Check]:
    """Run the reduced evaluation and score the headline claims."""
    traces = traces or TraceCache()
    checks: List[Check] = []
    sipt = SIPT_GEOMETRIES["32K_2w"]
    ideal = sipt.with_scheme(IndexingScheme.IDEAL)
    naive = replace(sipt, variant=SiptVariant.NAIVE)

    base = _suite(ooo_system, BASELINE_L1, traces, n_accesses)
    sipt_r = _suite(ooo_system, sipt, traces, n_accesses)
    ideal_r = _suite(ooo_system, ideal, traces, n_accesses)
    naive_r = _suite(ooo_system, naive, traces, n_accesses)

    speedup = harmonic_mean([sipt_r[a].speedup_over(base[a])
                             for a in SCORECARD_APPS])
    ideal_speedup = harmonic_mean([ideal_r[a].speedup_over(base[a])
                                   for a in SCORECARD_APPS])
    naive_speedup = harmonic_mean([naive_r[a].speedup_over(base[a])
                                   for a in SCORECARD_APPS])
    energy = sum(sipt_r[a].energy_over(base[a])
                 for a in SCORECARD_APPS) / len(SCORECARD_APPS)

    checks.append(Check(
        "SIPT (32K/2w + IDB) speeds up the OOO core",
        f"hmean speedup {speedup:.3f}", speedup > 1.0))
    checks.append(Check(
        "SIPT approaches the ideal cache (paper: within ~2.3%)",
        f"ideal {ideal_speedup:.3f} vs SIPT {speedup:.3f}",
        (ideal_speedup - speedup) < 0.04))
    checks.append(Check(
        "combined predictor beats naive speculation",
        f"naive {naive_speedup:.3f} vs combined {speedup:.3f}",
        speedup >= naive_speedup - 1e-9))
    checks.append(Check(
        "SIPT reduces total cache-hierarchy energy (paper: -15.6%)",
        f"energy ratio {energy:.3f}", energy < 0.9))
    checks.append(Check(
        "SIPT never materially underperforms the baseline",
        "min speedup "
        f"{min(sipt_r[a].speedup_over(base[a]) for a in SCORECARD_APPS):.3f}",
        min(sipt_r[a].speedup_over(base[a])
            for a in SCORECARD_APPS) > 0.99))

    # In-order: capacity wins (Fig. 3).
    cfg64 = SIPT_GEOMETRIES["64K_4w"].with_scheme(IndexingScheme.IDEAL)
    cfg32 = sipt.with_scheme(IndexingScheme.IDEAL)
    base_io = _suite(inorder_system, BASELINE_L1, traces, n_accesses)
    io64 = harmonic_mean([_suite(inorder_system, cfg64, traces,
                                 n_accesses)[a].speedup_over(base_io[a])
                          for a in SCORECARD_APPS])
    io32 = harmonic_mean([_suite(inorder_system, cfg32, traces,
                                 n_accesses)[a].speedup_over(base_io[a])
                          for a in SCORECARD_APPS])
    checks.append(Check(
        "in-order core prefers 64K/4w over 32K/2w (Fig. 3)",
        f"64K {io64:.3f} vs 32K/2w {io32:.3f}", io64 > io32))

    # Fragmentation degrades mildly (Fig. 18).
    frag_base = _suite(ooo_system, BASELINE_L1, traces, n_accesses,
                       condition=MemoryCondition.FRAGMENTED)
    frag = _suite(ooo_system, sipt, traces, n_accesses,
                  condition=MemoryCondition.FRAGMENTED)
    frag_speedup = harmonic_mean([frag[a].speedup_over(frag_base[a])
                                  for a in SCORECARD_APPS])
    checks.append(Check(
        "fragmented memory degrades SIPT only mildly (Fig. 18)",
        f"fragmented speedup {frag_speedup:.3f}", frag_speedup > 0.98))

    fast = sum(sipt_r[a].fast_fraction
               for a in SCORECARD_APPS) / len(SCORECARD_APPS)
    checks.append(Check(
        "combined predictor makes most accesses fast (Fig. 12)",
        f"mean fast fraction {fast:.3f}", fast > 0.8))
    return checks


def format_scorecard(checks: List[Check]) -> str:
    """Render the scorecard as aligned text."""
    width = max(len(c.claim) for c in checks)
    lines = []
    for check in checks:
        mark = "PASS" if check.passed else "FAIL"
        lines.append(f"[{mark}] {check.claim.ljust(width)}  "
                     f"({check.measured})")
    n_pass = sum(c.passed for c in checks)
    lines.append(f"{n_pass}/{len(checks)} headline claims reproduced")
    return "\n".join(lines)
