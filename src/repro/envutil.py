"""Validated environment-variable overrides.

Integer knobs (``REPRO_ACCESSES``, ``REPRO_TRACE_CACHE``,
``REPRO_KERNEL_MEMO``, ...) are read through :func:`env_int` so a
malformed value fails at the boundary as a typed
:class:`~repro.errors.ConfigError` naming the variable, instead of a
bare ``ValueError`` from ``int()`` deep inside whatever first touched
the setting.

This lives at the package root (rather than ``repro.sim.experiment``,
its original home) because both the sim layer and the workload
substrate need it and the substrate must not import the sim package —
``repro.sim.experiment`` imports the substrate, and the reverse edge
would be a cycle. ``experiment._env_int`` remains as a re-export for
existing callers and tests.
"""

from __future__ import annotations

import os

from .errors import ConfigError


def env_int(name: str, default: int) -> int:
    """An integer environment override, validated at the boundary.

    Returns ``default`` when the variable is unset; raises
    :class:`~repro.errors.ConfigError` naming the variable and the
    offending value when it is set but not an integer.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ConfigError(
            f"environment variable {name} must be an integer, "
            f"got {raw!r}") from None
