"""Shared helpers for component ``state_dict``/``load_state_dict``.

Every stateful simulator component (caches, TLBs, predictors, timing
models) exposes the same two-method protocol:

* ``state_dict()`` returns a **JSON-safe** dict of the component's
  mutable state — plain ints/floats/bools/strings/lists/dicts only, so
  a snapshot survives a ``json.dumps``/``loads`` round trip unchanged
  (tuples become lists; the component's loader normalizes them back).
* ``load_state_dict(state)`` restores that state into an
  already-constructed instance with the same configuration.
  Implementations mutate existing containers in place wherever other
  objects hold references to them (e.g. the TLB's pre-bound lookup
  dicts), so every pre-bound hot-path callable stays valid.

The helpers here cover the recurring cases: stats dataclasses (field
dump/restore), seeded numpy generators (bit-generator state), and —
for the large per-slot arrays of the outer cache levels — a compact
packed-integer encoding (:func:`pack_ints`/:func:`unpack_ints`).

Packing matters for checkpoint throughput, not correctness: an LLC's
tag/dirty/recency state is ~37k small integers, and serializing them
as nested JSON lists costs ~8 ms per snapshot — more than the entire
per-checkpoint budget the bench guards (≤5 % overhead at
``checkpoint_every=10000``). Packing the flat array through
``array`` → ``zlib`` → ``base64`` turns that into a few-KiB string
that ``json.dumps`` copies through in microseconds.
"""

from __future__ import annotations

import base64
import json
import zlib
from array import array
from dataclasses import fields
from typing import Any, Dict, List, Sequence

#: Typecodes in widening order, for overflow fallback.
_WIDER = {"B": "h", "b": "h", "h": "i", "i": "q"}


def canonical_json(payload: Any) -> str:
    """Canonical JSON text: sorted keys, compact separators.

    The one serialization every identity-sensitive consumer shares —
    journal cell ids, checkpoint headers and file names, warm-state
    cache keys — so the same logical payload always maps to the same
    bytes (and therefore the same CRC/digest) everywhere.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def stats_state(stats: Any) -> Dict[str, Any]:
    """A stats dataclass's counter fields as a plain JSON-safe dict."""
    return {f.name: getattr(stats, f.name) for f in fields(stats)}


def load_stats(stats: Any, state: Dict[str, Any]) -> None:
    """Restore counter fields into an existing stats dataclass.

    The object identity is preserved (callers hold references to the
    stats instance, e.g. the metrics registry), only its fields change.
    """
    for name, value in state.items():
        setattr(stats, name, value)


def pack_ints(values: Sequence[int], typecode: str = "q") -> str:
    """Encode a flat integer sequence as a compact JSON-safe string.

    Format: ``"<typecode>:<base64(zlib(array bytes))>"``. ``typecode``
    is an :mod:`array` code (``B``/``b``/``h``/``i``/``q``) — pass the
    narrowest one the values are known to fit (way indices and dirty
    bits fit a byte); out-of-range values fall back to the next wider
    code automatically, so a wrong guess costs time, never data.
    ``values`` may also be a bytes-like object with ``typecode="B"`` —
    the zero-copy path the per-way bytearray planes use.
    zlib level 1 is used: these arrays are mostly sentinel/zero runs,
    so even the fastest level shrinks them ~30x, and the encoder must
    stay cheap — it runs on every periodic checkpoint.

    The encoding is deterministic for a given input on a given
    machine; checkpoint digests are computed over the written bytes,
    so cross-version zlib differences cannot invalidate a snapshot.
    """
    if isinstance(values, (bytes, bytearray, memoryview)):
        # Pre-packed plane bytes (already in machine layout for
        # ``typecode``): compress directly, skip the array copy.
        raw = bytes(values)
    else:
        while True:
            try:
                raw = array(typecode, values).tobytes()
                break
            except OverflowError:
                typecode = _WIDER[typecode]  # KeyError on non-int garbage
    packed = base64.b64encode(zlib.compress(raw, 1)).decode("ascii")
    return f"{typecode}:{packed}"


def unpack_ints(packed: str) -> List[int]:
    """Decode a :func:`pack_ints` string back to a list of ints."""
    typecode, _, payload = packed.partition(":")
    values = array(typecode)
    values.frombytes(zlib.decompress(base64.b64decode(payload)))
    return values.tolist()


def freeze_rows(rows: Sequence[Sequence[Any]]) -> tuple:
    """An immutable value snapshot of a list-of-rows structure.

    Returns a tuple of row tuples. Used by the kernel engine
    (``repro.sim.kernel``) to checkpoint small row-major state — TLB
    tag/entry planes, perceptron weight rows — at stream boundaries:
    tuples share the row elements (cheap), compare by value, and
    cannot be mutated by later replay.
    """
    return tuple(tuple(row) for row in rows)


def load_rows(rows: Sequence[list],
              frozen: Sequence[Sequence[Any]]) -> None:
    """Restore :func:`freeze_rows` output into existing rows in place.

    Row identities survive (``row[:] = saved``), so pre-bound
    references elsewhere — the TLB's hot-path row bindings, the
    perceptron's weight rows — stay valid, mirroring the
    ``load_state_dict`` convention.
    """
    for row, saved in zip(rows, frozen):
        row[:] = saved


def rng_state(rng: Any) -> Dict[str, Any]:
    """A numpy ``Generator``'s bit-generator state (JSON-safe dict)."""
    return rng.bit_generator.state


def load_rng(rng: Any, state: Dict[str, Any]) -> None:
    """Restore a numpy ``Generator`` from :func:`rng_state` output."""
    rng.bit_generator.state = state
