"""MRU-based way prediction (Section VII-A, after Inoue et al.).

Instead of reading all ways of a set in parallel, the predicted (MRU) way
is read alone; on a correct prediction only ``1/n_ways`` of the data-array
energy is spent. A wrong prediction requires a second access that probes
the remaining ways, adding latency.

The paper evaluates the simple always-predict-MRU scheme (3 bits of
metadata per set for an 8-way cache) and finds it already accurate; SIPT
improves its accuracy further by lowering associativity (8-way baseline:
~89%; 2-way SIPT: ~97%).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.set_assoc import SetAssociativeCache


@dataclass
class WayPredictionStats:
    """Accuracy and energy-relevant counters."""

    predictions: int = 0
    correct: int = 0
    second_accesses: int = 0

    @property
    def accuracy(self) -> float:
        """Correct way predictions per prediction issued."""
        return self.correct / self.predictions if self.predictions else 0.0


class WayPredictor:
    """Predicts the MRU way of the accessed set.

    The predictor consults the cache's replacement policy *before* the
    access is performed (the MRU metadata is read first in hardware), then
    scores itself against the way the access actually hit.
    """

    #: Dotted metrics namespace for ``repro.obs`` registration.
    metrics_namespace = "predictor.way"

    def __init__(self, cache: SetAssociativeCache,
                 mispredict_penalty: int = 1):
        self.cache = cache
        self.mispredict_penalty = mispredict_penalty
        self.stats = WayPredictionStats()

    def predict(self, set_index: int) -> int:
        """Return the predicted way for an access to ``set_index``."""
        return self.cache.policy.mru_way(set_index)

    def observe(self, predicted_way: int, actual_way: int,
                hit: bool) -> int:
        """Score a prediction; returns added latency in cycles.

        Misses are not charged to the way predictor (all ways must be
        checked anyway and the fill latency dominates); this matches the
        paper's accounting, which reports way-prediction accuracy over
        hits.
        """
        if not hit:
            return 0
        self.stats.predictions += 1
        if predicted_way == actual_way:
            self.stats.correct += 1
            return 0
        self.stats.second_accesses += 1
        return self.mispredict_penalty

    def state_dict(self) -> dict:
        """JSON-safe snapshot (MRU prediction itself is stateless)."""
        from ..stateutil import stats_state
        return {"stats": stats_state(self.stats)}

    def load_state_dict(self, state: dict) -> None:
        """Restore accuracy counters (the cache holds the MRU state)."""
        from ..stateutil import load_stats
        load_stats(self.stats, state["stats"])

    def dynamic_energy_factor(self) -> float:
        """Average fraction of full-parallel data-array energy consumed.

        A correct prediction reads 1 of n ways; a misprediction reads the
        predicted way and then the remaining ``n - 1`` (a full set's worth
        in total plus the wasted first probe).
        """
        n = self.cache.n_ways
        if self.stats.predictions == 0:
            return 1.0
        correct = self.stats.correct / self.stats.predictions
        wrong = 1.0 - correct
        return correct * (1.0 / n) + wrong * ((1.0 + n) / n)


class PcWayPredictor(WayPredictor):
    """PC-indexed way prediction — the "fancy predictor" of Section VII-A.

    The paper sticks with MRU prediction ("fancy predictors may increase
    the accuracy ... we stay with this simple mechanism") partly because
    richer metadata can add latency. This variant is provided to let the
    trade-off be measured: a small PC-indexed table remembers the way
    each static load last hit, falling back to MRU for unseen loads.
    Unlike the MRU bits, a PC table can be read in the front end, like
    SIPT's own predictors.
    """

    def __init__(self, cache: SetAssociativeCache,
                 mispredict_penalty: int = 1, n_entries: int = 1024):
        super().__init__(cache, mispredict_penalty)
        if n_entries <= 0:
            raise ValueError("n_entries must be positive")
        self.n_entries = n_entries
        self._table = [-1] * n_entries
        self._last_entry = -1

    def _entry(self, pc: int, set_index: int) -> int:
        # A way is only meaningful within its set, so the table is
        # indexed by (PC, set) — this is what makes the predictor
        # "fancy": a lot more metadata than the 3 MRU bits per set.
        return (((pc >> 2) ^ (pc >> 9)) * 31 + set_index) \
            % self.n_entries

    def predict_pc(self, pc: int, set_index: int) -> int:
        """Predict the way for a specific static load in this set."""
        self._last_entry = self._entry(pc, set_index)
        way = self._table[self._last_entry]
        if way < 0 or way >= self.cache.n_ways:
            return self.cache.policy.mru_way(set_index)
        return way

    def observe(self, predicted_way: int, actual_way: int,
                hit: bool) -> int:
        penalty = super().observe(predicted_way, actual_way, hit)
        if hit and self._last_entry >= 0:
            self._table[self._last_entry] = actual_way
        return penalty

    def state_dict(self) -> dict:
        """Adds the PC-indexed way table to the base snapshot."""
        state = super().state_dict()
        state["table"] = list(self._table)
        state["last_entry"] = self._last_entry
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore counters plus the PC-indexed table."""
        super().load_state_dict(state)
        self._table[:] = state["table"]
        self._last_entry = state["last_entry"]
