"""Speculation outcome taxonomy (Sections V and VI of the paper).

Section V defines four outcomes for the bypass predictor:

* ``CORRECT_SPECULATION`` — bits unchanged, predictor speculated: fast.
* ``CORRECT_BYPASS``      — bits changed, predictor bypassed: slow but no
  wasted L1 access.
* ``OPPORTUNITY_LOSS``    — bits unchanged but predictor bypassed: a fast
  access was squandered.
* ``EXTRA_ACCESS``        — bits changed but predictor speculated: the L1
  must be re-accessed with the correct index (energy + port contention).

Section VI adds ``IDB_HIT``: the bypass predictor said "bits will change",
the index delta buffer supplied the changed bits, and the speculative
access still completed fast. A wrong IDB prediction is an EXTRA_ACCESS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class SpeculationOutcome(Enum):
    """Per-access classification of the SIPT speculation machinery."""

    CORRECT_SPECULATION = "correct_speculation"
    CORRECT_BYPASS = "correct_bypass"
    OPPORTUNITY_LOSS = "opportunity_loss"
    EXTRA_ACCESS = "extra_access"
    IDB_HIT = "idb_hit"

    @property
    def is_fast(self) -> bool:
        """Fast accesses complete at speculative-index latency."""
        return self in (SpeculationOutcome.CORRECT_SPECULATION,
                        SpeculationOutcome.IDB_HIT)

    @property
    def wastes_l1_access(self) -> bool:
        """Extra accesses burn an L1 array read and a port slot."""
        return self is SpeculationOutcome.EXTRA_ACCESS


@dataclass
class OutcomeCounts:
    """Aggregated outcome counters for one simulation."""

    correct_speculation: int = 0
    correct_bypass: int = 0
    opportunity_loss: int = 0
    extra_access: int = 0
    idb_hit: int = 0
    #: Of the extra accesses, how many came from a failed IDB value
    #: prediction (low-confidence loads) rather than from an endorsed
    #: perceptron speculation. Used by the Section VII-C replay model.
    extra_access_after_idb: int = 0

    def record(self, outcome: SpeculationOutcome,
               via_idb: bool = False) -> None:
        """Count one access's outcome (``via_idb`` marks IDB misses)."""
        # Identity dispatch instead of getattr/setattr-by-name: this
        # runs once per SIPT access and the string indirection showed
        # up in profiles.
        if outcome is SpeculationOutcome.CORRECT_SPECULATION:
            self.correct_speculation += 1
        elif outcome is SpeculationOutcome.EXTRA_ACCESS:
            self.extra_access += 1
            if via_idb:
                self.extra_access_after_idb += 1
        elif outcome is SpeculationOutcome.CORRECT_BYPASS:
            self.correct_bypass += 1
        elif outcome is SpeculationOutcome.OPPORTUNITY_LOSS:
            self.opportunity_loss += 1
        elif outcome is SpeculationOutcome.IDB_HIT:
            self.idb_hit += 1
        else:
            raise ValueError(f"unknown outcome {outcome!r}")

    @property
    def total(self) -> int:
        """Total classified accesses across the five outcome buckets."""
        return (self.correct_speculation + self.correct_bypass
                + self.opportunity_loss + self.extra_access + self.idb_hit)

    @property
    def fast_accesses(self) -> int:
        """Accesses served at the fast (speculative or IDB) latency."""
        return self.correct_speculation + self.idb_hit

    @property
    def fast_fraction(self) -> float:
        """Fraction of accesses served at the fast latency (Fig. 7)."""
        return self.fast_accesses / self.total if self.total else 0.0

    @property
    def extra_access_fraction(self) -> float:
        """Fraction of accesses that cost a second L1 lookup (Fig. 8)."""
        return self.extra_access / self.total if self.total else 0.0

    @property
    def prediction_accuracy(self) -> float:
        """Fraction of accesses where the machinery did the right thing."""
        good = (self.correct_speculation + self.correct_bypass
                + self.idb_hit)
        return good / self.total if self.total else 0.0

    def as_fractions(self) -> dict:
        """Outcome mix normalized to total accesses (Fig. 9 / Fig. 12)."""
        total = self.total or 1
        return {
            "correct_speculation": self.correct_speculation / total,
            "correct_bypass": self.correct_bypass / total,
            "opportunity_loss": self.opportunity_loss / total,
            "extra_access": self.extra_access / total,
            "idb_hit": self.idb_hit / total,
        }
