"""The paper's primary contribution: SIPT indexing and its predictors."""

from .counter import CounterBypassPredictor
from .idb import IdbStats, IndexDeltaBuffer
from .indexing import (
    IndexingScheme,
    InfeasibleConfigError,
    SiptVariant,
    check_vipt,
    required_speculative_bits,
    vipt_feasible,
)
from .outcomes import OutcomeCounts, SpeculationOutcome
from .perceptron import PerceptronPredictor, PerceptronStats
from .sipt_cache import L1AccessResult, SiptL1Cache, SiptL1Stats
from .tlb_slice import TlbSlice, TlbSliceStats
from .way_prediction import PcWayPredictor, WayPredictionStats, WayPredictor

__all__ = [
    "CounterBypassPredictor",
    "IdbStats",
    "IndexDeltaBuffer",
    "IndexingScheme",
    "InfeasibleConfigError",
    "L1AccessResult",
    "OutcomeCounts",
    "PcWayPredictor",
    "PerceptronPredictor",
    "PerceptronStats",
    "SiptL1Cache",
    "SiptL1Stats",
    "SiptVariant",
    "SpeculationOutcome",
    "TlbSlice",
    "TlbSliceStats",
    "WayPredictionStats",
    "WayPredictor",
    "check_vipt",
    "required_speculative_bits",
    "vipt_feasible",
]
