"""The SIPT L1 data cache controller (Sections IV-VI).

This module ties together the L1 array, the TLB, the perceptron bypass
predictor, the index delta buffer, and (optionally) way prediction, and
implements the access protocol of Fig. 4:

1. The L1 arrays are probed with a *speculative* set index while the TLB
   translates in parallel (unless the policy decides to bypass, in which
   case the probe waits for the PA).
2. After translation, the speculated index bits are compared against the
   PA bits.
3. If they match (or the access waited for the PA), the access completes
   "fast" at the L1's native latency.
4. If they mismatch, the access is *re-issued* with the correct index — a
   "slow" access that starts only after translation, costs an extra L1
   array read, and contends for the port.

Functional correctness never depends on the speculation: tags are full
physical line addresses and fills always use the true physical index, so
a wrong-index probe can only miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cache.set_assoc import SetAssociativeCache
from ..cache.tlb import TlbHierarchy, TranslationResult
from ..mem.address import index_bits
from ..mem.page_table import PageTable
from .idb import IndexDeltaBuffer
from .indexing import (
    IndexingScheme,
    SiptVariant,
    check_vipt,
    required_speculative_bits,
)
from .outcomes import OutcomeCounts, SpeculationOutcome
from .perceptron import PerceptronPredictor
from .way_prediction import WayPredictor


@dataclass
class L1AccessResult:
    """Everything the timing model needs about one L1 access."""

    hit: bool
    fast: bool                 # completed at speculative-access latency
    latency: int               # cycles until data available (L1 only)
    extra_l1_access: bool      # a wasted array read occurred
    outcome: Optional[SpeculationOutcome]
    translation: TranslationResult
    writeback_line: Optional[int] = None
    way_penalty: int = 0


@dataclass
class SiptL1Stats:
    """Counters specific to the SIPT front end."""

    accesses: int = 0
    fast_accesses: int = 0
    slow_accesses: int = 0
    extra_l1_accesses: int = 0
    speculative_probes: int = 0

    @property
    def fast_fraction(self) -> float:
        return self.fast_accesses / self.accesses if self.accesses else 0.0

    @property
    def extra_access_fraction(self) -> float:
        return (self.extra_l1_accesses / self.accesses
                if self.accesses else 0.0)


class SiptL1Cache:
    """An L1 data cache front end with a pluggable indexing scheme.

    Parameters
    ----------
    cache:
        The physical L1 array (tags are full line addresses).
    tlb:
        The TLB hierarchy used for translation.
    scheme:
        PIPT, VIPT, IDEAL, or SIPT.
    variant:
        For SIPT: NAIVE, BYPASS, or COMBINED.
    hit_latency:
        The array access latency of this L1 geometry (from the CACTI
        model); a fast access costs ``max(hit_latency, tlb_l1_latency)``
        because the tag compare still needs the PA.
    page_bound_idb:
        Propagated to the IDB for the zero-contiguity sensitivity study.
    """

    def __init__(self, cache: SetAssociativeCache, tlb: TlbHierarchy,
                 scheme: IndexingScheme = IndexingScheme.SIPT,
                 variant: SiptVariant = SiptVariant.COMBINED,
                 hit_latency: int = 2,
                 way_prediction: bool = False,
                 page_bound_idb: bool = False):
        self.cache = cache
        self.tlb = tlb
        self.scheme = scheme
        self.variant = variant
        self.hit_latency = hit_latency
        self.n_spec_bits = cache.speculative_bits
        if scheme is IndexingScheme.VIPT:
            check_vipt(cache.capacity_bytes, cache.n_ways)
        self.stats = SiptL1Stats()
        self.outcomes = OutcomeCounts()
        self.perceptron: Optional[PerceptronPredictor] = None
        self.idb: Optional[IndexDeltaBuffer] = None
        if scheme is IndexingScheme.SIPT and self.n_spec_bits > 0:
            if variant in (SiptVariant.BYPASS, SiptVariant.COMBINED):
                self.perceptron = PerceptronPredictor()
            if variant is SiptVariant.COMBINED and self.n_spec_bits >= 2:
                # With a single speculative bit the reversed bypass
                # prediction replaces the IDB (Section VI-A).
                self.idb = IndexDeltaBuffer(self.n_spec_bits,
                                            page_bound=page_bound_idb)
        self.way_predictor = WayPredictor(cache) if way_prediction else None

    # ------------------------------------------------------------------
    def front_end(self, pc: int, va: int, page_table: PageTable):
        """Translation + speculation timing, without touching the array.

        Returns ``(translation, fast, extra, outcome, latency)``. Used
        directly by the coherent multicore driver, where the array
        content is managed by the snoop bus; :meth:`access` composes it
        with the private array access.
        """
        self.stats.accesses += 1
        translation = self.tlb.translate(va, page_table)
        pa = translation.pa
        if self.scheme is IndexingScheme.SIPT and self.n_spec_bits > 0:
            fast, extra, outcome, via_idb = self._speculate(pc, va, pa)
        else:
            fast, extra, outcome = self._non_sipt_timing()
            via_idb = False
        latency = self._latency(fast, translation, extra)
        if fast:
            self.stats.fast_accesses += 1
        else:
            self.stats.slow_accesses += 1
        if extra:
            self.stats.extra_l1_accesses += 1
        if outcome is not None:
            self.outcomes.record(outcome, via_idb=via_idb)
        return translation, fast, extra, outcome, latency

    def access(self, pc: int, va: int, is_write: bool,
               page_table: PageTable) -> L1AccessResult:
        """Perform one load/store through the SIPT front end."""
        translation, fast, extra, outcome, latency = self.front_end(
            pc, va, page_table)
        pa = translation.pa
        predicted_way = -1
        if self.way_predictor is not None:
            # The MRU metadata is read before the arrays are accessed.
            predicted_way = self.way_predictor.predict(
                self.cache.set_index(pa))
        cache_result = self.cache.access(pa, is_write)
        way_penalty = 0
        if self.way_predictor is not None:
            way_penalty = self.way_predictor.observe(
                predicted_way, cache_result.way, cache_result.hit)
        return L1AccessResult(
            hit=cache_result.hit, fast=fast,
            latency=latency + way_penalty,
            extra_l1_access=extra, outcome=outcome,
            translation=translation,
            writeback_line=cache_result.writeback_line,
            way_penalty=way_penalty)

    # ------------------------------------------------------------------
    # speculation policy per variant
    # ------------------------------------------------------------------
    def _speculate(self, pc: int, va: int, pa: int):
        """Returns (fast, extra, outcome, via_idb) for a SIPT access.

        ``via_idb`` marks extra accesses caused by a failed IDB value
        prediction (a low-confidence load), as opposed to an endorsed
        perceptron speculation that failed.
        """
        n = self.n_spec_bits
        va_bits = index_bits(va, n)
        pa_bits = index_bits(pa, n)
        unchanged = va_bits == pa_bits
        self.stats.speculative_probes += 1

        if self.variant is SiptVariant.NAIVE:
            if unchanged:
                return (True, False,
                        SpeculationOutcome.CORRECT_SPECULATION, False)
            return False, True, SpeculationOutcome.EXTRA_ACCESS, False

        speculate = self.perceptron.predict(pc)
        self.perceptron.update(pc, unchanged)

        if self.variant is SiptVariant.BYPASS:
            if speculate and unchanged:
                outcome = SpeculationOutcome.CORRECT_SPECULATION
                fast, extra = True, False
            elif speculate and not unchanged:
                outcome = SpeculationOutcome.EXTRA_ACCESS
                fast, extra = False, True
            elif not speculate and unchanged:
                outcome = SpeculationOutcome.OPPORTUNITY_LOSS
                fast, extra = False, False
            else:
                outcome = SpeculationOutcome.CORRECT_BYPASS
                fast, extra = False, False
            return fast, extra, outcome, False

        # COMBINED: perceptron gates the IDB; always access speculatively.
        if speculate:
            if unchanged:
                return (True, False,
                        SpeculationOutcome.CORRECT_SPECULATION, False)
            return False, True, SpeculationOutcome.EXTRA_ACCESS, False
        # Perceptron says "bits will change": predict their value.
        if n == 1:
            # Reversed-prediction shortcut (Section VI-A): flipping the
            # single bit is the value prediction.
            predicted = va_bits ^ 1
        else:
            predicted = self.idb.predict(pc, va)
        if self.idb is not None:
            hit = self.idb.record_outcome(predicted, pa)
            self.idb.update(pc, va, pa)
        else:
            hit = predicted == pa_bits
        if hit:
            return True, False, SpeculationOutcome.IDB_HIT, True
        return False, True, SpeculationOutcome.EXTRA_ACCESS, True

    def _non_sipt_timing(self):
        """Timing class for PIPT / VIPT / IDEAL / trivially-VIPT SIPT."""
        if self.scheme is IndexingScheme.PIPT:
            return False, False, None
        # VIPT, IDEAL, and SIPT with zero speculative bits all overlap
        # translation with the array access.
        return True, False, None

    # ------------------------------------------------------------------
    def _latency(self, fast: bool, translation: TranslationResult,
                 extra: bool) -> int:
        """L1-visible latency for this access.

        Fast path: the array access overlaps translation; data is gated by
        the later of array latency and TLB latency (TLB L1 hits are fully
        hidden; TLB misses expose their latency for any scheme).

        Slow path: the (repeated or delayed) array access starts only when
        the PA is available, i.e. after the full translation latency.
        """
        if fast:
            return max(self.hit_latency, translation.latency)
        return translation.latency + self.hit_latency

    def predictor_overhead_fraction(self) -> float:
        """Predictor storage relative to the L1 array (paper: < 2%)."""
        predictor_bits = 0
        if self.perceptron is not None:
            predictor_bits += self.perceptron.storage_bits
        if self.idb is not None:
            predictor_bits += self.idb.storage_bits
        l1_bits = self.cache.capacity_bytes * 8
        return predictor_bits / l1_bits
