"""The SIPT L1 data cache controller (Sections IV-VI).

This module ties together the L1 array, the TLB, the perceptron bypass
predictor, the index delta buffer, and (optionally) way prediction, and
implements the access protocol of Fig. 4:

1. The L1 arrays are probed with a *speculative* set index while the TLB
   translates in parallel (unless the policy decides to bypass, in which
   case the probe waits for the PA).
2. After translation, the speculated index bits are compared against the
   PA bits.
3. If they match (or the access waited for the PA), the access completes
   "fast" at the L1's native latency.
4. If they mismatch, the access is *re-issued* with the correct index — a
   "slow" access that starts only after translation, costs an extra L1
   array read, and contends for the port.

Functional correctness never depends on the speculation: tags are full
physical line addresses and fills always use the true physical index, so
a wrong-index probe can only miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cache.set_assoc import SetAssociativeCache
from ..cache.tlb import TlbHierarchy, TranslationResult
from ..mem.address import PAGE_SHIFT
from ..mem.page_table import PageTable
from .idb import IndexDeltaBuffer
from .indexing import (
    IndexingScheme,
    SiptVariant,
    check_vipt,
    required_speculative_bits,
)
from .outcomes import OutcomeCounts, SpeculationOutcome
from .perceptron import PerceptronPredictor
from .way_prediction import WayPredictor


class L1AccessResult:
    """Everything the timing model needs about one L1 access.

    A plain ``__slots__`` class rather than a dataclass: one is
    allocated per memory access, and slot storage avoids the per-object
    ``__dict__`` on the hot path.
    """

    __slots__ = ("hit", "fast", "latency", "extra_l1_access", "outcome",
                 "translation", "writeback_line", "way_penalty")

    def __init__(self, hit: bool, fast: bool, latency: int,
                 extra_l1_access: bool,
                 outcome: Optional[SpeculationOutcome],
                 translation: TranslationResult,
                 writeback_line: Optional[int] = None,
                 way_penalty: int = 0):
        self.hit = hit
        self.fast = fast               # completed at speculative latency
        self.latency = latency         # cycles until data available (L1)
        self.extra_l1_access = extra_l1_access  # wasted array read
        self.outcome = outcome
        self.translation = translation
        self.writeback_line = writeback_line
        self.way_penalty = way_penalty

    def __repr__(self) -> str:
        return (f"L1AccessResult(hit={self.hit}, fast={self.fast}, "
                f"latency={self.latency}, "
                f"extra_l1_access={self.extra_l1_access}, "
                f"outcome={self.outcome}, way_penalty={self.way_penalty})")


@dataclass
class SiptL1Stats:
    """Counters specific to the SIPT front end."""

    accesses: int = 0
    fast_accesses: int = 0
    slow_accesses: int = 0
    extra_l1_accesses: int = 0
    #: Accesses that actually probed the array with a speculated index.
    #: NAIVE and COMBINED probe on every access; BYPASS only probes when
    #: the perceptron endorses speculation (a bypassed access waits for
    #: the PA and reads the array exactly once, non-speculatively), so
    #: ``speculative_probes <= accesses`` always holds.
    speculative_probes: int = 0

    @property
    def fast_fraction(self) -> float:
        """Fraction of L1 accesses served at the speculative latency."""
        return self.fast_accesses / self.accesses if self.accesses else 0.0

    @property
    def extra_access_fraction(self) -> float:
        """Fraction of L1 accesses that needed a second lookup."""
        return (self.extra_l1_accesses / self.accesses
                if self.accesses else 0.0)


class SiptL1Cache:
    """An L1 data cache front end with a pluggable indexing scheme.

    Parameters
    ----------
    cache:
        The physical L1 array (tags are full line addresses).
    tlb:
        The TLB hierarchy used for translation.
    scheme:
        PIPT, VIPT, IDEAL, or SIPT.
    variant:
        For SIPT: NAIVE, BYPASS, or COMBINED.
    hit_latency:
        The array access latency of this L1 geometry (from the CACTI
        model); a fast access costs ``max(hit_latency, tlb_l1_latency)``
        because the tag compare still needs the PA.
    page_bound_idb:
        Propagated to the IDB for the zero-contiguity sensitivity study.
    """

    def __init__(self, cache: SetAssociativeCache, tlb: TlbHierarchy,
                 scheme: IndexingScheme = IndexingScheme.SIPT,
                 variant: SiptVariant = SiptVariant.COMBINED,
                 hit_latency: int = 2,
                 way_prediction: bool = False,
                 page_bound_idb: bool = False):
        self.cache = cache
        self.tlb = tlb
        self.scheme = scheme
        self.variant = variant
        self.hit_latency = hit_latency
        self.n_spec_bits = cache.speculative_bits
        if scheme is IndexingScheme.VIPT:
            check_vipt(cache.capacity_bytes, cache.n_ways)
        self.stats = SiptL1Stats()
        self.outcomes = OutcomeCounts()
        self.perceptron: Optional[PerceptronPredictor] = None
        self.idb: Optional[IndexDeltaBuffer] = None
        if scheme is IndexingScheme.SIPT and self.n_spec_bits > 0:
            if variant in (SiptVariant.BYPASS, SiptVariant.COMBINED):
                self.perceptron = PerceptronPredictor()
            if variant is SiptVariant.COMBINED and self.n_spec_bits >= 2:
                # With a single speculative bit the reversed bypass
                # prediction replaces the IDB (Section VI-A).
                self.idb = IndexDeltaBuffer(self.n_spec_bits,
                                            page_bound=page_bound_idb)
        self.way_predictor = WayPredictor(cache) if way_prediction else None
        # Hot-path constants and pre-bound callables, resolved once
        # instead of per access.
        self._is_sipt = (scheme is IndexingScheme.SIPT
                         and self.n_spec_bits > 0)
        self._default_fast = scheme is not IndexingScheme.PIPT
        self._spec_mask = (1 << self.n_spec_bits) - 1
        self._translate = tlb.translate
        self._cache_access = cache.access
        self._record = self.outcomes.record
        self._is_naive = variant is SiptVariant.NAIVE
        self._is_bypass = variant is SiptVariant.BYPASS
        self._predict_train = (self.perceptron.predict_train
                               if self.perceptron is not None else None)
        self._idb_predict_update = (self.idb.predict_update
                                    if self.idb is not None else None)

    # ------------------------------------------------------------------
    def front_end(self, pc: int, va: int, page_table: PageTable):
        """Translation + speculation timing, without touching the array.

        Returns ``(translation, fast, extra, outcome, latency)``. Used
        directly by the coherent multicore driver, where the array
        content is managed by the snoop bus. :meth:`access` inlines a
        mirror of this logic for the single-core hot path — keep the
        two in sync.
        """
        stats = self.stats
        stats.accesses += 1
        translation = self._translate(va, page_table)
        if self._is_sipt:
            fast, extra, outcome, via_idb = self._speculate(
                pc, va, translation.pa)
            if outcome is not None:
                self._record(outcome, via_idb)
        else:
            # VIPT, IDEAL, and SIPT with zero speculative bits overlap
            # translation with the array access; PIPT serializes.
            fast = self._default_fast
            extra = False
            outcome = None
        # Fast path: the array access overlaps translation; data is
        # gated by the later of array latency and TLB latency. Slow
        # path: the (repeated or delayed) array read starts only when
        # the PA is available, i.e. after the full translation latency.
        t_lat = translation.latency
        if fast:
            stats.fast_accesses += 1
            hit_lat = self.hit_latency
            latency = hit_lat if hit_lat > t_lat else t_lat
        else:
            stats.slow_accesses += 1
            latency = t_lat + self.hit_latency
        if extra:
            stats.extra_l1_accesses += 1
        return translation, fast, extra, outcome, latency

    def access(self, pc: int, va: int, is_write: bool,
               page_table: PageTable) -> L1AccessResult:
        """Perform one load/store through the SIPT front end.

        The translation/speculation/latency block below mirrors
        :meth:`front_end` (keep the two in sync): this method runs once
        per simulated access and the extra call frame was measurable.
        """
        stats = self.stats
        stats.accesses += 1
        translation = self._translate(va, page_table)
        pa = translation.pa
        if self._is_sipt:
            fast, extra, outcome, via_idb = self._speculate(pc, va, pa)
            if outcome is not None:
                self._record(outcome, via_idb)
        else:
            fast = self._default_fast
            extra = False
            outcome = None
        t_lat = translation.latency
        if fast:
            stats.fast_accesses += 1
            hit_lat = self.hit_latency
            latency = hit_lat if hit_lat > t_lat else t_lat
        else:
            stats.slow_accesses += 1
            latency = t_lat + self.hit_latency
        if extra:
            stats.extra_l1_accesses += 1
        way_penalty = 0
        way_predictor = self.way_predictor
        if way_predictor is not None and fast:
            # The MRU metadata is read before the arrays are accessed —
            # but only a fast (speculatively indexed) access consults
            # it: a slow or bypassed access already waited for the PA,
            # so all ways are read in parallel with no serial penalty
            # and the predictor is neither queried nor trained.
            predicted_way = way_predictor.predict(self.cache.set_index(pa))
            cache_result = self._cache_access(pa, is_write)
            way_penalty = way_predictor.observe(
                predicted_way, cache_result.way, cache_result.hit)
        else:
            cache_result = self._cache_access(pa, is_write)
        return L1AccessResult(
            cache_result.hit, fast, latency + way_penalty, extra,
            outcome, translation, cache_result.writeback_line,
            way_penalty)

    # ------------------------------------------------------------------
    # speculation policy per variant
    # ------------------------------------------------------------------
    def _speculate(self, pc: int, va: int, pa: int):
        """Returns (fast, extra, outcome, via_idb) for a SIPT access.

        ``via_idb`` marks extra accesses caused by a failed IDB value
        prediction (a low-confidence load), as opposed to an endorsed
        perceptron speculation that failed.
        """
        mask = self._spec_mask
        va_bits = (va >> PAGE_SHIFT) & mask
        pa_bits = (pa >> PAGE_SHIFT) & mask
        unchanged = va_bits == pa_bits
        stats = self.stats

        if self._is_naive:
            # NAIVE always probes with the speculated index.
            stats.speculative_probes += 1
            if unchanged:
                return (True, False,
                        SpeculationOutcome.CORRECT_SPECULATION, False)
            return False, True, SpeculationOutcome.EXTRA_ACCESS, False

        speculate = self._predict_train(pc, unchanged)

        if self._is_bypass:
            if speculate:
                # Only an endorsed speculation reads the array with the
                # VA-derived index; a bypass waits for the PA and reads
                # the array exactly once, non-speculatively.
                stats.speculative_probes += 1
                if unchanged:
                    return (True, False,
                            SpeculationOutcome.CORRECT_SPECULATION, False)
                return False, True, SpeculationOutcome.EXTRA_ACCESS, False
            if unchanged:
                return (False, False,
                        SpeculationOutcome.OPPORTUNITY_LOSS, False)
            return False, False, SpeculationOutcome.CORRECT_BYPASS, False

        # COMBINED always accesses speculatively: the perceptron only
        # chooses between the VA bits and the IDB's value prediction.
        stats.speculative_probes += 1

        # Perceptron gates the IDB in COMBINED mode.
        if speculate:
            if unchanged:
                return (True, False,
                        SpeculationOutcome.CORRECT_SPECULATION, False)
            return False, True, SpeculationOutcome.EXTRA_ACCESS, False
        # Perceptron says "bits will change": predict their value.
        if self._idb_predict_update is None:
            # Reversed-prediction shortcut (Section VI-A): with a single
            # speculative bit, flipping it is the value prediction.
            hit = (va_bits ^ 1) == pa_bits
        else:
            hit = self._idb_predict_update(pc, va, pa)
        if hit:
            return True, False, SpeculationOutcome.IDB_HIT, True
        return False, True, SpeculationOutcome.EXTRA_ACCESS, True

    def state_dict(self) -> dict:
        """JSON-safe snapshot of the whole L1 front end.

        Composes the array, TLB hierarchy (with walker), and whichever
        predictors this configuration instantiated; absent predictors
        serialize as ``None`` so the snapshot's key set — and therefore
        the checkpoint digest preimage — has a stable shape.
        """
        from ..stateutil import stats_state
        return {
            "stats": stats_state(self.stats),
            "outcomes": stats_state(self.outcomes),
            "cache": self.cache.state_dict(),
            "tlb": self.tlb.state_dict(),
            "perceptron": (self.perceptron.state_dict()
                           if self.perceptron is not None else None),
            "idb": (self.idb.state_dict()
                    if self.idb is not None else None),
            "way_predictor": (self.way_predictor.state_dict()
                              if self.way_predictor is not None else None),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a same-configuration snapshot into this front end.

        Every owned object keeps its identity (components restore in
        place), so the pre-bound hot-path callables resolved in
        ``__init__`` remain correct after the load.
        """
        from ..stateutil import load_stats
        load_stats(self.stats, state["stats"])
        load_stats(self.outcomes, state["outcomes"])
        self.cache.load_state_dict(state["cache"])
        self.tlb.load_state_dict(state["tlb"])
        if self.perceptron is not None and state["perceptron"] is not None:
            self.perceptron.load_state_dict(state["perceptron"])
        if self.idb is not None and state["idb"] is not None:
            self.idb.load_state_dict(state["idb"])
        if (self.way_predictor is not None
                and state["way_predictor"] is not None):
            self.way_predictor.load_state_dict(state["way_predictor"])

    def predictor_overhead_fraction(self) -> float:
        """Predictor storage relative to the L1 array (paper: < 2%)."""
        predictor_bits = 0
        if self.perceptron is not None:
            predictor_bits += self.perceptron.storage_bits
        if self.idb is not None:
            predictor_bits += self.idb.storage_bits
        l1_bits = self.cache.capacity_bytes * 8
        return predictor_bits / l1_bits
