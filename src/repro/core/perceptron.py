"""Perceptron-based speculation bypass predictor (Section V).

The paper bases its predictor directly on the smallest global-history
perceptron configuration of Jimenez & Lin (HPCA 2001): a 64-entry table of
perceptrons indexed by the memory operation's PC, each holding a bias plus
one signed weight per global-history bit. The global history register
records the last ``h`` speculation outcomes (1 = index bits unchanged /
fast access succeeded, 0 = bits changed).

Prediction: ``y = w0 + sum_i (x_i ? w_i : -w_i)``; ``y >= 0`` means
"speculate" (index bits expected unchanged), ``y < 0`` means "bypass".
Training uses the standard perceptron rule with threshold
``theta = floor(1.93 * h + 14)`` and saturating signed weights.

Storage: 64 perceptrons x 13 weights x 6 bits = 624 bytes, the figure the
paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class PerceptronStats:
    """Prediction accuracy counters."""

    predictions: int = 0
    correct: int = 0

    @property
    def accuracy(self) -> float:
        """Correct predictions per prediction issued."""
        return self.correct / self.predictions if self.predictions else 0.0


class PerceptronPredictor:
    """PC-indexed global-history perceptron, per Jimenez & Lin.

    Parameters mirror the paper's sizing: 64 entries, 12 history bits
    (13 weights including the bias), 6-bit weights.
    """

    #: Dotted metrics namespace for ``repro.obs`` registration.
    metrics_namespace = "predictor.perceptron"

    def __init__(self, n_entries: int = 64, history_length: int = 12,
                 weight_bits: int = 6):
        if n_entries <= 0 or history_length <= 0:
            raise ValueError("n_entries and history_length must be positive")
        self.n_entries = n_entries
        self.history_length = history_length
        self.weight_bits = weight_bits
        self.weight_max = (1 << (weight_bits - 1)) - 1
        self.weight_min = -(1 << (weight_bits - 1))
        self.theta = int(1.93 * history_length + 14)
        self.stats = PerceptronStats()
        # weights[entry][0] is the bias w0; [1..h] pair with history bits.
        self._weights: List[List[int]] = [
            [0] * (history_length + 1) for _ in range(n_entries)
        ]
        # Global history as a list of +/-1 (bipolar encoding), oldest last.
        self._history: List[int] = [1] * history_length

    # ------------------------------------------------------------------
    def _entry(self, pc: int) -> int:
        # Fold higher PC bits in so static loads from different code
        # regions do not alias onto the same perceptron.
        return ((pc >> 2) ^ (pc >> 9)) % self.n_entries

    def output(self, pc: int) -> int:
        """The raw perceptron sum ``y`` for this PC (confidence signal).

        Guards against non-finite activations: hardware weights are
        saturating integers, so a NaN/inf here means corrupted predictor
        state (e.g. an injected fault) and ``y >= 0`` would silently
        resolve to "bypass" forever. Surface it as a typed error instead.
        """
        weights = self._weights[self._entry(pc)]
        y = weights[0]
        for weight, x in zip(weights[1:], self._history):
            y += weight if x > 0 else -weight
        if y != y or y in (float("inf"), float("-inf")):
            from ..errors import SimulationError
            raise SimulationError(
                f"perceptron entry {self._entry(pc)} produced a "
                "non-finite activation; predictor state is corrupt")
        return y

    def predict(self, pc: int) -> bool:
        """True -> speculate (bits expected unchanged); False -> bypass."""
        self.stats.predictions += 1
        return self.output(pc) >= 0

    def update(self, pc: int, bits_unchanged: bool) -> None:
        """Train on the resolved outcome and shift the global history.

        ``bits_unchanged`` is the ground truth: did the speculative index
        bits survive translation? Call this exactly once per access,
        *after* :meth:`predict`.
        """
        y = self.output(pc)
        predicted_unchanged = y >= 0
        if predicted_unchanged == bits_unchanged:
            self.stats.correct += 1
        target = 1 if bits_unchanged else -1
        if predicted_unchanged != bits_unchanged or abs(y) <= self.theta:
            weights = self._weights[self._entry(pc)]
            weights[0] = self._clip(weights[0] + target)
            for i, x in enumerate(self._history, start=1):
                weights[i] = self._clip(weights[i] + target * x)
        self._history.insert(0, target)
        self._history.pop()

    def predict_train(self, pc: int, bits_unchanged: bool) -> bool:
        """Fused :meth:`predict` + :meth:`update` for the hot path.

        The simulator resolves the ground truth in the same call as the
        prediction (translation is functionally instantaneous here), so
        computing the dot product once and reusing ``y`` for both the
        decision and the training threshold halves the predictor cost.
        Equivalent to ``p = predict(pc); update(pc, bits_unchanged);
        return p`` — the same stats, weights, and history evolution.
        """
        entry = ((pc >> 2) ^ (pc >> 9)) % self.n_entries
        weights = self._weights[entry]
        history = self._history
        y = weights[0]
        i = 1
        for x in history:
            w = weights[i]
            y += w if x > 0 else -w
            i += 1
        if y != y or y in (float("inf"), float("-inf")):
            from ..errors import SimulationError
            raise SimulationError(
                f"perceptron entry {entry} produced a "
                "non-finite activation; predictor state is corrupt")
        predicted_unchanged = y >= 0
        stats = self.stats
        stats.predictions += 1
        if predicted_unchanged == bits_unchanged:
            stats.correct += 1
        target = 1 if bits_unchanged else -1
        if predicted_unchanged != bits_unchanged or (
                y if y >= 0 else -y) <= self.theta:
            clip_max = self.weight_max
            clip_min = self.weight_min
            w = weights[0] + target
            weights[0] = clip_max if w > clip_max else (
                clip_min if w < clip_min else w)
            for i, x in enumerate(history, start=1):
                w = weights[i] + (target if x > 0 else -target)
                weights[i] = clip_max if w > clip_max else (
                    clip_min if w < clip_min else w)
        history.insert(0, target)
        history.pop()
        return predicted_unchanged

    def _clip(self, w: int) -> int:
        return max(self.weight_min, min(self.weight_max, w))

    def state_dict(self) -> dict:
        """JSON-safe snapshot: weights, global history, stats."""
        from ..stateutil import stats_state
        return {"stats": stats_state(self.stats),
                "weights": [list(row) for row in self._weights],
                "history": list(self._history)}

    def load_state_dict(self, state: dict) -> None:
        """Restore a same-sizing snapshot (rows mutated in place)."""
        from ..stateutil import load_stats
        load_stats(self.stats, state["stats"])
        for row, saved in zip(self._weights, state["weights"]):
            row[:] = saved
        self._history[:] = state["history"]

    # ------------------------------------------------------------------
    @property
    def storage_bits(self) -> int:
        """Total predictor storage, for the overhead claim (~624 B)."""
        return (self.n_entries * (self.history_length + 1) * self.weight_bits
                + self.history_length)
