"""TLB slice — the related-work alternative of Taylor et al. (ISCA'90).

Section II-D: the MIPS R6000's "TLB slice" is a tiny, fast lookaside
structure holding only the few physical-address bits needed to index
the cache, accessed with the low virtual page-number bits. It predates
SIPT by decades and solves a similar problem, but differs in two ways
the paper leans on:

* the slice is a *translation* structure: it must be looked up before
  the index is known, adding a (short) serial step, whereas SIPT's
  PC-indexed predictors run in the front end, off the critical path;
* the slice is indexed by VA bits with no tags, so distinct pages that
  alias in the slice mispredict each other — its accuracy is purely a
  function of page locality, whereas SIPT's perceptron+IDB exploit the
  per-instruction *delta* structure.

This module implements the slice faithfully (untagged, direct-mapped,
few-bit payload, trained on every translation) so the ablation bench
can compare its index-prediction accuracy against SIPT's machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..mem.address import PAGE_SHIFT, index_bits


@dataclass
class TlbSliceStats:
    """Prediction counters."""

    lookups: int = 0
    correct: int = 0

    @property
    def accuracy(self) -> float:
        """Slice lookups whose low index bits matched the true PA."""
        return self.correct / self.lookups if self.lookups else 0.0


class TlbSlice:
    """Untagged direct-mapped store of low physical index bits.

    ``n_entries`` of ``n_bits`` each, indexed by the low VPN bits —
    the R6000 used 4-8 entries per set of low PPN bits; we default to
    the common 64-entry organization.
    """

    def __init__(self, n_bits: int, n_entries: int = 64):
        if n_bits < 1 or n_entries < 1:
            raise ValueError("n_bits and n_entries must be positive")
        self.n_bits = n_bits
        self.n_entries = n_entries
        self.stats = TlbSliceStats()
        self._slice: List[int] = [0] * n_entries

    def _entry(self, va: int) -> int:
        return (va >> PAGE_SHIFT) % self.n_entries

    def predict(self, va: int) -> int:
        """Predicted physical index bits for ``va``."""
        self.stats.lookups += 1
        return self._slice[self._entry(va)]

    def record_outcome(self, predicted: int, pa: int) -> bool:
        """Score a prediction against the true PA bits."""
        hit = predicted == index_bits(pa, self.n_bits)
        if hit:
            self.stats.correct += 1
        return hit

    def update(self, va: int, pa: int) -> None:
        """Install the true bits after translation completes."""
        self._slice[self._entry(va)] = index_bits(pa, self.n_bits)

    @property
    def storage_bits(self) -> int:
        """Total SRAM bits this slice costs (entries x bits per entry)."""
        return self.n_entries * self.n_bits
