"""Index Delta Buffer — partial index value prediction (Section VI).

When the bypass predictor says the speculative index bits will *change*,
the IDB predicts their post-translation values. Like a branch target
buffer, it is a small PC-indexed table; each entry stores the *delta*
between the VA and PA speculative index bits. Because Linux's buddy
allocator maps memory in coarse contiguous blocks, one delta covers a
whole run of pages (Fig. 10), so the table learns quickly and stays
stable.

The predicted index is ``(va_index_bits + delta) mod 2**n_bits`` — a
narrow add with no carry propagation, cheap enough to be off the critical
path (added after address generation).

``page_bound=True`` models the paper's harshest sensitivity case
("Removing >4KiB contiguity"): each entry's delta is only trusted when
the access falls in the exact same 4 KiB page the entry last saw;
otherwise the prediction is deliberately randomized. This mimics a
pathological system with zero contiguity beyond a page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..mem.address import (
    PAGE_SHIFT,
    apply_index_delta,
    index_bits,
    index_delta,
    page_number,
)


@dataclass
class IdbStats:
    """IDB prediction accuracy counters."""

    predictions: int = 0
    hits: int = 0
    updates: int = 0

    @property
    def hit_rate(self) -> float:
        """Index-delta predictions confirmed correct, per prediction."""
        return self.hits / self.predictions if self.predictions else 0.0


class IndexDeltaBuffer:
    """PC-indexed, direct-mapped table of speculative-index deltas.

    Sized like the perceptron table (64 entries) per the paper; each entry
    is only ``n_bits`` wide (1-3 bits), so total storage is a few dozen
    bytes.
    """

    #: Dotted metrics namespace for ``repro.obs`` registration.
    metrics_namespace = "predictor.idb"

    def __init__(self, n_bits: int, n_entries: int = 64,
                 page_bound: bool = False,
                 rng: Optional[np.random.Generator] = None):
        if n_bits < 1:
            raise ValueError("IDB needs at least one speculative bit")
        self.n_bits = n_bits
        self.n_entries = n_entries
        self.page_bound = page_bound
        self.stats = IdbStats()
        self._deltas: List[int] = [0] * n_entries
        self._last_page: List[int] = [-1] * n_entries
        self._rng = rng or np.random.default_rng(0)

    def _entry(self, pc: int) -> int:
        # Same index hash as the perceptron table: fold higher PC bits
        # in to avoid aliasing between code regions.
        return ((pc >> 2) ^ (pc >> 9)) % self.n_entries

    def predict(self, pc: int, va: int) -> int:
        """Predict the post-translation speculative index bits for ``va``."""
        self.stats.predictions += 1
        entry = self._entry(pc)
        delta = self._deltas[entry]
        if self.page_bound and self._last_page[entry] != page_number(va):
            # Zero->4KiB-contiguity mode: different page, delta untrusted.
            delta = int(self._rng.integers(1 << self.n_bits))
        return apply_index_delta(va, delta, self.n_bits)

    def record_outcome(self, predicted_bits: int, pa: int) -> bool:
        """Score a prediction against the true PA bits; returns hit."""
        hit = predicted_bits == index_bits(pa, self.n_bits)
        if hit:
            self.stats.hits += 1
        return hit

    def update(self, pc: int, va: int, pa: int) -> None:
        """Learn the observed VA->PA delta (called after translation)."""
        entry = self._entry(pc)
        self._deltas[entry] = index_delta(va, pa, self.n_bits)
        self._last_page[entry] = page_number(va)
        self.stats.updates += 1

    def predict_update(self, pc: int, va: int, pa: int) -> bool:
        """Fused predict + record_outcome + update for the hot path.

        The simulator resolves the PA in the same call as the
        prediction, so one pass computes the index bits, scores the
        prediction, and learns the new delta. Equivalent to
        ``p = predict(pc, va); hit = record_outcome(p, pa);
        update(pc, va, pa); return hit`` — identical stats and table
        evolution.
        """
        stats = self.stats
        stats.predictions += 1
        stats.updates += 1
        entry = ((pc >> 2) ^ (pc >> 9)) % self.n_entries
        mask = (1 << self.n_bits) - 1
        page = va >> PAGE_SHIFT
        va_bits = page & mask
        pa_bits = (pa >> PAGE_SHIFT) & mask
        delta = self._deltas[entry]
        if self.page_bound and self._last_page[entry] != page:
            delta = int(self._rng.integers(1 << self.n_bits))
        hit = ((va_bits + delta) & mask) == pa_bits
        if hit:
            stats.hits += 1
        self._deltas[entry] = (pa_bits - va_bits) & mask
        self._last_page[entry] = page
        return hit

    def state_dict(self) -> dict:
        """JSON-safe snapshot: deltas, last pages, stats, RNG state.

        The generator state matters only in ``page_bound`` mode (where
        untrusted deltas are randomized), but it is captured always so
        the snapshot shape does not depend on the mode.
        """
        from ..stateutil import rng_state, stats_state
        return {"stats": stats_state(self.stats),
                "deltas": list(self._deltas),
                "last_page": list(self._last_page),
                "rng": rng_state(self._rng)}

    def load_state_dict(self, state: dict) -> None:
        """Restore a same-sizing snapshot, generator mid-stream."""
        from ..stateutil import load_rng, load_stats
        load_stats(self.stats, state["stats"])
        self._deltas[:] = state["deltas"]
        self._last_page[:] = state["last_page"]
        load_rng(self._rng, state["rng"])

    @property
    def storage_bits(self) -> int:
        """Table storage: n_entries deltas of n_bits each."""
        return self.n_entries * self.n_bits
