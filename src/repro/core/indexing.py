"""L1 indexing schemes: PIPT, VIPT, ideal, and the three SIPT variants.

An indexing policy decides, per access, *when* the L1 arrays may be read
relative to address translation and *which* set index is used:

* ``PIPT``  — wait for the PA; every access pays translation latency.
* ``VIPT``  — index with untranslated offset bits only; requires the
  index+offset to fit in the 4 KiB page offset (the paper's constraint:
  way size <= page size), otherwise the configuration is infeasible.
* ``IDEAL`` — index with the PA bits but at speculative-access latency:
  the paper's upper bound ("assume the index bits are always correct").
* ``SIPT``  — speculate on the index bits above the page offset, in one
  of three variants (Sections IV-VI): ``naive`` always speculates,
  ``bypass`` adds the perceptron speculate/bypass filter, ``combined``
  adds IDB value prediction behind the perceptron.
"""

from __future__ import annotations

from enum import Enum


class IndexingScheme(Enum):
    """Top-level L1 indexing scheme."""

    PIPT = "pipt"
    VIPT = "vipt"
    IDEAL = "ideal"
    SIPT = "sipt"


class SiptVariant(Enum):
    """The three SIPT designs the paper evaluates."""

    NAIVE = "naive"          # Section IV: always speculate
    BYPASS = "bypass"        # Section V: perceptron speculate/bypass
    COMBINED = "combined"    # Section VI: bypass + IDB value prediction


class InfeasibleConfigError(Exception):
    """Raised when a VIPT cache would need index bits beyond the page.

    This is the central constraint of the paper (Section II-C):
    ``capacity = n_ways * page_size`` is the largest VIPT-feasible cache
    for a given associativity.
    """


def vipt_feasible(capacity_bytes: int, n_ways: int,
                  page_size: int = 4096) -> bool:
    """True if a VIPT cache of this geometry needs no speculative bits."""
    way_bytes = capacity_bytes // n_ways
    return way_bytes <= page_size


def required_speculative_bits(capacity_bytes: int, n_ways: int,
                              page_size: int = 4096) -> int:
    """Index bits beyond the page offset for this geometry (0 if VIPT-ok)."""
    way_bytes = capacity_bytes // n_ways
    if way_bytes <= page_size:
        return 0
    return (way_bytes // page_size).bit_length() - 1


def check_vipt(capacity_bytes: int, n_ways: int,
               page_size: int = 4096) -> None:
    """Raise :class:`InfeasibleConfigError` for VIPT-impossible geometry."""
    if not vipt_feasible(capacity_bytes, n_ways, page_size):
        bits = required_speculative_bits(capacity_bytes, n_ways, page_size)
        raise InfeasibleConfigError(
            f"{capacity_bytes // 1024} KiB / {n_ways}-way needs {bits} index "
            f"bit(s) beyond a {page_size // 1024} KiB page; VIPT cannot "
            f"index it — use SIPT")
