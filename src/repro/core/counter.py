"""Counter-based speculation bypass predictor (the paper's baseline).

Section V notes the authors "experimented with simpler counter-based
predictors, but their accuracy is inferior" (~85% average vs >90% for
the perceptron) before settling on the perceptron. This module provides
that baseline so the comparison can be reproduced: a PC-indexed table of
saturating up/down counters, sized like the perceptron table.

A counter learns the *bias* of each static load (do its index bits
usually survive translation?) but, unlike the perceptron, cannot exploit
correlation with recent outcomes of other loads — which is exactly what
phase-changing applications need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .perceptron import PerceptronStats


class CounterBypassPredictor:
    """PC-indexed saturating-counter speculate/bypass predictor.

    ``counter_bits`` controls hysteresis (2 bits -> counters in [0, 3],
    speculate when the counter is in the upper half). The interface
    mirrors :class:`~repro.core.perceptron.PerceptronPredictor` so the
    two can be swapped in experiments.
    """

    #: Dotted metrics namespace for ``repro.obs`` registration (the
    #: counter baseline slots into the perceptron's place).
    metrics_namespace = "predictor.counter"

    def __init__(self, n_entries: int = 64, counter_bits: int = 2):
        if n_entries <= 0 or counter_bits <= 0:
            raise ValueError("n_entries and counter_bits must be positive")
        self.n_entries = n_entries
        self.counter_max = (1 << counter_bits) - 1
        self.threshold = 1 << (counter_bits - 1)
        self.stats = PerceptronStats()
        # Initialized weakly-speculate: matches the perceptron's
        # optimistic zero-weight start.
        self._counters: List[int] = [self.threshold] * n_entries

    def _entry(self, pc: int) -> int:
        return ((pc >> 2) ^ (pc >> 9)) % self.n_entries

    def predict(self, pc: int) -> bool:
        """True -> speculate (index bits expected unchanged)."""
        self.stats.predictions += 1
        return self._counters[self._entry(pc)] >= self.threshold

    def update(self, pc: int, bits_unchanged: bool) -> None:
        """Saturating increment/decrement on the resolved outcome."""
        entry = self._entry(pc)
        predicted = self._counters[entry] >= self.threshold
        if predicted == bits_unchanged:
            self.stats.correct += 1
        if bits_unchanged:
            self._counters[entry] = min(self.counter_max,
                                        self._counters[entry] + 1)
        else:
            self._counters[entry] = max(0, self._counters[entry] - 1)

    @property
    def storage_bits(self) -> int:
        """Table storage in bits."""
        return self.n_entries * (self.counter_max.bit_length())
