#!/usr/bin/env python
"""The capture-once / replay-many trace workflow (the paper's method).

Generates a trace through the OS model, saves it to disk with its
VA->PA mapping (the model's equivalent of a Macsim trace annotated with
Linux pagemap state), reloads it, and replays the identical stream
under several L1 configurations.

Run:  python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

from repro.core import IndexingScheme
from repro.sim import BASELINE_L1, SIPT_GEOMETRIES, ooo_system, simulate
from repro.workloads import generate_trace, load_trace, save_trace


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        print("capturing trace for 'gcc' (20k accesses) ...")
        trace = generate_trace("gcc", 20_000, seed=42)
        path = save_trace(trace, Path(tmp) / "gcc_20k")
        size_kib = path.stat().st_size / 1024
        print(f"saved {path.name}: {size_kib:.0f} KiB "
              f"(stream + page table)\n")

        replayed = load_trace(path)
        configs = {
            "VIPT 32K/8w (baseline)": BASELINE_L1,
            "SIPT 32K/2w": SIPT_GEOMETRIES["32K_2w"],
            "SIPT 64K/4w": SIPT_GEOMETRIES["64K_4w"],
            "ideal 32K/2w":
                SIPT_GEOMETRIES["32K_2w"].with_scheme(
                    IndexingScheme.IDEAL),
        }
        print(f"{'config':>24s} {'IPC':>7s} {'miss':>6s} {'fast':>6s}")
        baseline_ipc = None
        for name, cfg in configs.items():
            result = simulate(replayed, ooo_system(cfg))
            if baseline_ipc is None:
                baseline_ipc = result.ipc
            print(f"{name:>24s} {result.ipc:>7.3f} "
                  f"{result.l1_stats.miss_rate:>6.3f} "
                  f"{result.fast_fraction:>6.3f}  "
                  f"({result.ipc / baseline_ipc:.3f}x)")
        print("\nOne capture, any number of replays — different L1")
        print("configurations see the exact same access stream and")
        print("VA->PA mapping, as in the paper's methodology.")


if __name__ == "__main__":
    main()
