#!/usr/bin/env python
"""How OS memory conditions affect SIPT's predictability (Section VII-B).

Generates traces for a few applications under four operating
conditions — a normal long-uptime machine, artificially fragmented
physical memory (unusable-free-space index > 0.95), transparent huge
pages disabled, and the "page-bound" worst case with zero contiguity
beyond 4 KiB — and reports SIPT's fast-access fraction, speedup, and
energy under each.

Run:  python examples/fragmentation_study.py
"""

from dataclasses import replace

from repro.sim import (
    BASELINE_L1,
    SIPT_GEOMETRIES,
    TraceCache,
    ooo_system,
    run_app,
)
from repro.workloads import MemoryCondition

APPS = ["perlbench", "libquantum", "calculix", "graph500"]

CONDITIONS = [
    ("normal", MemoryCondition.NORMAL, False),
    ("fragmented", MemoryCondition.FRAGMENTED, False),
    ("thp-off", MemoryCondition.THP_OFF, False),
    ("page-bound", MemoryCondition.NORMAL, True),
]


def main(n_accesses: int = 20_000) -> None:
    traces = TraceCache()
    sipt = SIPT_GEOMETRIES["32K_2w"]
    print("SIPT 32K/2-way under stressed memory conditions "
          "(OOO core, per-condition baseline)\n")
    print(f"{'app':>14s} {'condition':>12s} {'fast frac':>10s} "
          f"{'speedup':>8s} {'energy':>7s} {'hugepages':>10s}")
    for app in APPS:
        for name, condition, page_bound in CONDITIONS:
            cfg = replace(sipt, page_bound_idb=page_bound)
            base = run_app(app, ooo_system(BASELINE_L1),
                           condition=condition, n_accesses=n_accesses,
                           cache=traces)
            result = run_app(app, ooo_system(cfg), condition=condition,
                             n_accesses=n_accesses, cache=traces)
            trace = traces.get(app, n_accesses, condition)
            print(f"{app:>14s} {name:>12s} {result.fast_fraction:>10.3f} "
                  f"{result.speedup_over(base):>8.3f} "
                  f"{result.energy_over(base):>7.3f} "
                  f"{trace.huge_fraction:>10.2f}")
        print()
    print("The paper's conclusion holds: fragmentation and THP-off dent")
    print("the prediction rate but SIPT never falls behind the baseline,")
    print("because deltas within each page (and each surviving run of")
    print("pages) remain constant and the IDB keeps learning them.")


if __name__ == "__main__":
    main()
