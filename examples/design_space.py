#!/usr/bin/env python
"""Explore the L1 design space that motivates SIPT (Sections II-III).

Uses the CACTI-substitute model to sweep capacity and associativity,
flags which configurations a VIPT cache can actually build (way size
must not exceed the 4 KiB page), and shows the latency/energy cost of
staying VIPT-feasible — the paper's Fig. 1 / Tab. I argument.

Run:  python examples/design_space.py
"""

from repro.core import required_speculative_bits, vipt_feasible
from repro.timing import CactiModel

KiB = 1024


def main() -> None:
    model = CactiModel()
    baseline_ns = model.latency_ns(32 * KiB, 8)
    print("L1 design space (latency relative to the 32K/8-way VIPT "
          "baseline; CACTI-substitute model)\n")
    print(f"{'config':>16s} {'cycles':>7s} {'vs base':>8s} "
          f"{'nJ/access':>10s} {'VIPT?':>6s} {'spec bits':>10s}")

    for capacity in (16 * KiB, 32 * KiB, 64 * KiB, 128 * KiB):
        for ways in (2, 4, 8, 16):
            cycles = model.latency_cycles(capacity, ways)
            rel = model.latency_ns(capacity, ways) / baseline_ns
            nj = model.dynamic_nj(capacity, ways)
            feasible = vipt_feasible(capacity, ways)
            bits = required_speculative_bits(capacity, ways)
            marker = "yes" if feasible else "NO"
            print(f"{capacity // KiB:>13d}K/{ways:<2d} {cycles:>7d} "
                  f"{rel:>8.2f} {nj:>10.3f} {marker:>6s} {bits:>10d}")
        print()

    print("Observations (the paper's motivation):")
    print(" * associativity dominates latency — dropping 32K from 8-way")
    print("   to 2-way halves the access time;")
    print(" * every desirable low-latency point needs index bits beyond")
    print("   the page offset, which VIPT cannot supply — that is the")
    print("   gap SIPT closes with 1-3 speculated bits.")


if __name__ == "__main__":
    main()
