#!/usr/bin/env python
"""SIPT and cache coherence: demonstrating the "no implications" claim.

Section IV argues SIPT needs no coherence changes: only the L1 is
probed speculatively, a wrong-index probe is an ordinary tag mismatch,
and fills always use the physical index. This demo builds two cores
with MESI-coherent private L1s sharing a memory segment, runs a
producer/consumer exchange, and shows that interleaved SIPT
misspeculation probes neither perturb MESI state nor generate bus
traffic.

Run:  python examples/coherence_demo.py
"""

from repro.cache import MesiState, SetAssociativeCache, SnoopBus
from repro.mem import PAGE_SIZE, PhysicalMemory, Process


def main() -> None:
    memory = PhysicalMemory(64 * 1024 * 1024, thp_enabled=False)
    producer = Process(memory, asid=1)
    consumer = Process(memory, asid=2)
    segment = memory.create_shared_segment(PAGE_SIZE)
    prod_region = producer.map_shared(segment)
    cons_region = consumer.map_shared(segment)

    bus = SnoopBus(hop_latency=8)
    l1 = [bus.attach(SetAssociativeCache(32 * 1024, 64, 2))
          for _ in range(2)]

    pa = producer.translate(prod_region.start)
    assert pa == consumer.translate(cons_region.start)
    print(f"shared line PA {pa:#x}; producer VA {prod_region.start:#x}, "
          f"consumer VA {cons_region.start:#x} (synonymous pair)\n")

    def states():
        return " / ".join(f"core{idx}={l1[idx].state_of(pa).value}"
                          for idx in range(2))

    print("producer writes        ->", end=" ")
    bus.write(0, pa)
    print(states())

    print("consumer reads         ->", end=" ")
    latency, source = bus.read(1, pa)
    print(f"{states()}  (dirty data forwarded from {source}, "
          f"+{latency} cycles)")

    print("consumer writes back   ->", end=" ")
    bus.write(1, pa)
    print(states())

    # A SIPT misspeculation on core 0: the speculative index was wrong,
    # so the probe looks in the wrong set. It is a pure tag mismatch.
    before = (bus.stats.bus_reads, bus.stats.bus_read_exclusives,
              bus.stats.invalidations_sent, bus.stats.interventions)
    wrong_set = (l1[0].cache.set_index(pa) + 1) % l1[0].cache.n_sets
    hit_way = l1[0].cache.probe(wrong_set, l1[0].cache.line_of(pa))
    after = (bus.stats.bus_reads, bus.stats.bus_read_exclusives,
             bus.stats.invalidations_sent, bus.stats.interventions)

    print("\nSIPT wrong-index probe on core 0:")
    print(f"  tag match in wrong set : "
          f"{'none (way -1)' if hit_way < 0 else hit_way}")
    print(f"  bus events before/after: {before} -> {after}")
    print(f"  MESI state unchanged   : {states()}")
    bus.check_invariants()
    print("\nMESI invariants hold; the misspeculation was invisible to "
          "coherence,\nexactly as Section IV claims.")


if __name__ == "__main__":
    main()
