#!/usr/bin/env python
"""Render the paper's headline figures as ASCII charts in the terminal.

Runs a reduced version of the evaluation (a representative app subset,
short traces) and draws Fig. 13-style IPC bars, Fig. 14-style energy
bars, and a Fig. 12-style stacked outcome breakdown — a quick visual
sanity check that the reproduction behaves like the paper without
waiting for the full benchmark suite.

Run:  python examples/paper_figures.py
"""

from repro.report import bar_chart, speedup_summary, stacked_bars
from repro.sim import (
    BASELINE_L1,
    SIPT_GEOMETRIES,
    TraceCache,
    ooo_system,
    run_app,
)

APPS = ["sjeng", "h264ref", "perlbench", "libquantum", "calculix",
        "gromacs", "graph500", "xalancbmk_17", "leela_17",
        "exchange2_17"]
N = 15_000


def main() -> None:
    traces = TraceCache()
    sipt_cfg = ooo_system(SIPT_GEOMETRIES["32K_2w"])
    base_cfg = ooo_system(BASELINE_L1)

    speedups, energies, outcomes = {}, {}, {}
    for app in APPS:
        base = run_app(app, base_cfg, n_accesses=N, cache=traces)
        sipt = run_app(app, sipt_cfg, n_accesses=N, cache=traces)
        speedups[app] = sipt.speedup_over(base)
        energies[app] = sipt.energy_over(base)
        outcomes[app] = sipt.outcomes.as_fractions()

    print(bar_chart(speedups, baseline=1.0,
                    title="Fig. 13 (subset): SIPT 32K/2w IPC vs "
                          "baseline (| = 1.0)"))
    print("  " + speedup_summary(speedups))
    print()
    print(bar_chart(energies, baseline=1.0,
                    title="Fig. 14 (subset): cache-hierarchy energy vs "
                          "baseline (| = 1.0; lower is better)"))
    print()
    print("Fig. 12 (subset): speculation outcome mix at 2 bits")
    print(stacked_bars(
        outcomes,
        order=["correct_speculation", "idb_hit", "correct_bypass",
               "opportunity_loss", "extra_access"],
        symbols={"correct_speculation": "#", "idb_hit": "=",
                 "correct_bypass": ".", "opportunity_loss": "o",
                 "extra_access": "x"}))


if __name__ == "__main__":
    main()
