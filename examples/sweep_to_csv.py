#!/usr/bin/env python
"""Run a custom design-space sweep and export it as CSV.

Sweeps the four SIPT geometries against the baseline across two memory
conditions on the OOO core, writes `sipt_sweep.csv`, and prints a small
summary — the workflow for producing data to plot externally.

Run:  python examples/sweep_to_csv.py [out.csv]
"""

import sys
from collections import defaultdict

from repro.sim import BASELINE_L1, SIPT_GEOMETRIES
from repro.sim.sweep import SweepSpec, run_sweep, to_csv
from repro.workloads import MemoryCondition

APPS = ["perlbench", "h264ref", "calculix", "libquantum", "graph500"]


def main(out_path: str = "sipt_sweep.csv") -> None:
    spec = SweepSpec(
        apps=APPS,
        configs={"baseline": BASELINE_L1, **SIPT_GEOMETRIES},
        conditions=[MemoryCondition.NORMAL, MemoryCondition.FRAGMENTED],
        baseline="baseline",
    )
    print(f"Sweeping {len(APPS)} apps x {len(spec.configs)} configs x "
          f"{len(spec.conditions)} conditions ...")
    rows = run_sweep(spec, n_accesses=12_000)
    path = to_csv(rows, out_path)
    print(f"wrote {len(rows)} rows to {path}\n")

    # Quick per-config geometric summary from the rows themselves.
    groups = defaultdict(list)
    for row in rows:
        if row["speedup"] != "" and row["config"] != "baseline":
            groups[(row["config"], row["condition"])].append(
                row["speedup"])
    print(f"{'config':>10s} {'condition':>12s} {'hmean speedup':>14s}")
    for (config, condition), speedups in sorted(groups.items()):
        hmean = len(speedups) / sum(1.0 / s for s in speedups)
        print(f"{config:>10s} {condition:>12s} {hmean:>14.3f}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "sipt_sweep.csv")
