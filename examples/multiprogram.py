#!/usr/bin/env python
"""Quad-core multi-programmed run (Section VI-B / Fig. 15).

Runs one of the paper's Table III mixes on a simulated quad-core OOO
system: private L1 (+L2) per core, shared LLC scaled to 4x capacity,
shared DRAM, traces recycled until the last core finishes. Reports
per-core and sum-of-IPC speedup plus energy for the baseline and SIPT.

Run:  python examples/multiprogram.py [mix_name]
"""

import sys

from repro.sim import (
    BASELINE_L1,
    SIPT_GEOMETRIES,
    TraceCache,
    ooo_system,
    simulate_multicore,
)
from repro.workloads import get_mix


def main(mix_name: str = "mix0", n_accesses: int = 15_000) -> None:
    members = get_mix(mix_name)
    traces = TraceCache()
    mix_traces = [traces.get(app, n_accesses, seed=core)
                  for core, app in enumerate(members)]

    print(f"Quad-core run of {mix_name}: {', '.join(members)}\n")
    base = simulate_multicore(mix_traces, ooo_system(BASELINE_L1))
    sipt = simulate_multicore(mix_traces,
                              ooo_system(SIPT_GEOMETRIES["32K_2w"]))

    print(f"{'core':>5s} {'app':>14s} {'base IPC':>9s} {'SIPT IPC':>9s} "
          f"{'speedup':>8s} {'fast frac':>10s}")
    for core, (b, s) in enumerate(zip(base, sipt)):
        print(f"{core:>5d} {b.app:>14s} {b.ipc:>9.3f} {s.ipc:>9.3f} "
              f"{s.ipc / b.ipc:>8.3f} {s.fast_fraction:>10.3f}")

    sum_base = sum(r.ipc for r in base)
    sum_sipt = sum(r.ipc for r in sipt)
    e_base = sum(r.energy.total for r in base)
    e_sipt = sum(r.energy.total for r in sipt)
    print(f"\nsum-of-IPC speedup : {sum_sipt / sum_base:.3f}x "
          f"(paper average across mixes: 1.081x)")
    print(f"cache energy ratio : {e_sipt / e_base:.3f}x")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mix0")
