#!/usr/bin/env python
"""Quickstart: compare a VIPT baseline L1 against a SIPT L1.

Runs one SPEC-like workload (perlbench) through the paper's Table II
out-of-order system twice — once with the 32 KiB 8-way VIPT baseline,
once with the 32 KiB 2-way 2-cycle SIPT cache (combined perceptron +
index-delta-buffer prediction) — and prints speedup, energy, and the
speculation outcome mix.

Run:  python examples/quickstart.py [app] [n_accesses]
"""

import sys

from repro.sim import (
    BASELINE_L1,
    SIPT_GEOMETRIES,
    TraceCache,
    ooo_system,
    run_app,
)


def main(app: str = "perlbench", n_accesses: int = 30_000) -> None:
    traces = TraceCache()
    print(f"Simulating {app!r} ({n_accesses} memory accesses) on the "
          f"Table II OOO system...\n")

    baseline = run_app(app, ooo_system(BASELINE_L1),
                       n_accesses=n_accesses, cache=traces)
    sipt = run_app(app, ooo_system(SIPT_GEOMETRIES["32K_2w"]),
                   n_accesses=n_accesses, cache=traces)

    print(f"{'':24s}{'baseline (VIPT 32K/8w/4c)':>28s}"
          f"{'SIPT (32K/2w/2c)':>20s}")
    print(f"{'IPC':24s}{baseline.ipc:>28.3f}{sipt.ipc:>20.3f}")
    print(f"{'L1 miss rate':24s}{baseline.l1_stats.miss_rate:>28.3f}"
          f"{sipt.l1_stats.miss_rate:>20.3f}")
    print(f"{'cache energy (mJ)':24s}"
          f"{baseline.energy.total * 1e3:>28.4f}"
          f"{sipt.energy.total * 1e3:>20.4f}")

    print(f"\nSIPT speedup over baseline : "
          f"{sipt.speedup_over(baseline):.3f}x")
    print(f"SIPT energy vs baseline    : "
          f"{sipt.energy_over(baseline):.3f}x")
    print(f"fast-access fraction       : {sipt.fast_fraction:.3f}")

    print("\nSpeculation outcome mix (Section V/VI taxonomy):")
    for name, fraction in sipt.outcomes.as_fractions().items():
        print(f"  {name:20s} {fraction:6.3f}")


if __name__ == "__main__":
    app = sys.argv[1] if len(sys.argv) > 1 else "perlbench"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000
    main(app, n)
