#!/usr/bin/env python
"""Anatomy of the SIPT predictors, on a hand-built address space.

Builds a small process with three memory regions whose VA->PA deltas
differ (one aligned, one displaced by a constant, one remapped per
page), then drives the perceptron bypass predictor and the index delta
buffer directly — the component-level view of Sections V and VI.

Run:  python examples/predictor_anatomy.py
"""

import numpy as np

from repro.core import IndexDeltaBuffer, PerceptronPredictor
from repro.mem import (
    PAGE_SIZE,
    PhysicalMemory,
    Process,
    fragment_memory,
    index_bits,
)

N_BITS = 2  # speculative bits of a 32K/2-way L1


def build_regions():
    """Three regions with distinct delta behaviour."""
    memory = PhysicalMemory(64 * 1024 * 1024, thp_enabled=False)
    noise = Process(memory, asid=9)
    proc = Process(memory, asid=1)

    aligned = proc.mmap(64 * PAGE_SIZE, align=PAGE_SIZE)
    proc.populate(aligned)                      # delta == 0

    noise_region = noise.mmap(3 * PAGE_SIZE)    # odd displacement
    noise.populate(noise_region)
    displaced = proc.mmap(64 * PAGE_SIZE, align=PAGE_SIZE)
    proc.populate(displaced)                    # constant delta != 0

    fragment_memory(memory.buddy, rng=np.random.default_rng(1))
    scattered = proc.mmap(64 * PAGE_SIZE, align=PAGE_SIZE)
    proc.populate(scattered)                    # per-page random delta
    return proc, {"aligned": aligned, "displaced": displaced,
                  "scattered": scattered}


def drive(proc, region, pc, perceptron, idb, rng):
    """Replay accesses to one region through both predictors."""
    outcomes = {"fast": 0, "idb_fast": 0, "slow": 0}
    for _ in range(2000):
        va = region.start + int(rng.integers(region.length)) & ~0x7
        pa = proc.translate(va)
        unchanged = index_bits(va, N_BITS) == index_bits(pa, N_BITS)
        if perceptron.predict(pc):
            outcomes["fast" if unchanged else "slow"] += 1
        else:
            predicted = idb.predict(pc, va)
            hit = idb.record_outcome(predicted, pa)
            idb.update(pc, va, pa)
            outcomes["idb_fast" if hit else "slow"] += 1
        perceptron.update(pc, unchanged)
    return outcomes


def main() -> None:
    proc, regions = build_regions()
    perceptron = PerceptronPredictor()
    idb = IndexDeltaBuffer(N_BITS)
    rng = np.random.default_rng(7)

    print("Per-region predictor behaviour (2000 accesses each, "
          f"{N_BITS} speculative bits):\n")
    print(f"{'region':>11s} {'fast (perceptron)':>18s} "
          f"{'fast (IDB)':>11s} {'slow':>6s}")
    for i, (name, region) in enumerate(regions.items()):
        pc = 0x400000 + 4 * i
        out = drive(proc, region, pc, perceptron, idb, rng)
        total = sum(out.values())
        print(f"{name:>11s} {out['fast'] / total:>18.2f} "
              f"{out['idb_fast'] / total:>11.2f} "
              f"{out['slow'] / total:>6.2f}")

    print("\nReading the table:")
    print(" * aligned   — bits never change; the perceptron learns to")
    print("   always speculate (all fast, IDB never consulted);")
    print(" * displaced — bits always change by a constant; the")
    print("   perceptron learns to hand off to the IDB, which nails the")
    print("   delta (fast via IDB);")
    print(" * scattered — per-page random deltas; only same-page reuse")
    print("   is predictable, so some accesses stay slow. This is the")
    print("   fragmented-memory regime of Section VII-B.")


if __name__ == "__main__":
    main()
